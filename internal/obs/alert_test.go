package obs

import (
	"strings"
	"testing"
)

// stepSeries drives one rule through a value sequence sampled every
// intervalPs and returns the transitions taken.
func stepSeries(t *testing.T, r Rule, intervalPs int64, vals []float64) []Transition {
	t.Helper()
	if err := r.defaults(); err != nil {
		t.Fatal(err)
	}
	st := newStore(len(vals) + 1)
	rs := ruleState{rule: r}
	var out []Transition
	for i, v := range vals {
		at := int64(i+1) * intervalPs
		st.observe(r.Series, at, v)
		if tr, ok := rs.step(st, at); ok {
			out = append(out, tr)
		}
	}
	return out
}

func firings(ts []Transition) int {
	n := 0
	for _, tr := range ts {
		if tr.To == Firing {
			n++
		}
	}
	return n
}

// The damping satellite: a value flapping across the threshold on every
// scrape must never fire under For >= 2 intervals — it mirrors the
// autoscaler's no-flap hysteresis test.
func TestAlertFlappingNeverFiresUnderFor(t *testing.T) {
	const iv = int64(100)
	vals := make([]float64, 64)
	for i := range vals {
		if i%2 == 0 {
			vals[i] = 10 // above
		} else {
			vals[i] = 1 // below
		}
	}
	r := Threshold("flap", "x", ReduceLast, 0, 5, 2*iv)
	ts := stepSeries(t, r, iv, vals)
	if got := firings(ts); got != 0 {
		t.Fatalf("flapping input produced %d firings under For=2 intervals:\n%s",
			got, AlertLog(ts))
	}
	// Every pending excursion must have been cancelled back to inactive.
	for _, tr := range ts {
		if tr.To != Pending && !(tr.From == Pending && tr.To == Inactive) {
			t.Fatalf("unexpected transition %s", tr)
		}
	}
}

// A condition held past For fires exactly once, then resolves exactly
// once when it clears.
func TestAlertForDampingFiresOnceThenResolves(t *testing.T) {
	const iv = int64(100)
	vals := []float64{1, 10, 10, 10, 10, 10, 1, 1}
	r := Threshold("held", "x", ReduceLast, 0, 5, 2*iv)
	ts := stepSeries(t, r, iv, vals)
	want := []string{
		"200 held inactive->pending v=10",
		"400 held pending->firing v=10",
		"700 held firing->inactive v=1",
	}
	got := strings.TrimSuffix(AlertLog(ts), "\n")
	if got != strings.Join(want, "\n") {
		t.Fatalf("transitions:\n%s\nwant:\n%s", got, strings.Join(want, "\n"))
	}
}

// For=0 fires on the first breaching tick.
func TestAlertZeroForFiresImmediately(t *testing.T) {
	ts := stepSeries(t, Threshold("now", "x", ReduceLast, 0, 5, 0), 100, []float64{1, 10})
	if len(ts) != 1 || ts[0].To != Firing || ts[0].From != Inactive || ts[0].AtPs != 200 {
		t.Fatalf("transitions = %v", ts)
	}
}

// Delta threshold: a counter bump fires, and the alert resolves once
// the bump slides out of the window.
func TestAlertDeltaThresholdResolves(t *testing.T) {
	const iv = int64(100)
	// Counter: flat, +1 at t=400, flat after.
	vals := []float64{0, 0, 0, 1, 1, 1, 1, 1}
	r := Threshold("trip", "x", ReduceDelta, 2*iv, 0.5, 0)
	ts := stepSeries(t, r, iv, vals)
	want := []string{
		"400 trip inactive->firing v=1",
		"600 trip firing->inactive v=0",
	}
	got := strings.TrimSuffix(AlertLog(ts), "\n")
	if got != strings.Join(want, "\n") {
		t.Fatalf("transitions:\n%s\nwant:\n%s", got, strings.Join(want, "\n"))
	}
}

// Absence: a series that stops reporting fires; one that never reported
// fires with v=-1.
func TestAlertAbsence(t *testing.T) {
	r := Absence("gone", "x", 250)
	if err := r.defaults(); err != nil {
		t.Fatal(err)
	}
	st := newStore(8)
	rs := ruleState{rule: r}
	st.observe("x", 100, 1)
	if _, ok := rs.step(st, 100); ok {
		t.Fatal("fresh series fired absence")
	}
	if _, ok := rs.step(st, 300); ok {
		t.Fatal("stale-for-200 fired under window 250")
	}
	tr, ok := rs.step(st, 400)
	if !ok || tr.To != Firing || tr.V != 300 {
		t.Fatalf("stale-for-300 transition = %+v ok=%v", tr, ok)
	}
	st.observe("x", 500, 2)
	if tr, ok := rs.step(st, 500); !ok || tr.To != Inactive {
		t.Fatalf("resumed series did not resolve: %+v ok=%v", tr, ok)
	}

	never := ruleState{rule: r}
	empty := newStore(8)
	if tr, ok := never.step(empty, 50); !ok || tr.To != Firing || tr.V != -1 {
		t.Fatalf("never-reported series: %+v ok=%v", tr, ok)
	}
}

// Burn-rate: both windows must burn past Factor — a short spike trips
// the short window but not the long one, so it never fires; a
// sustained breach fires and later resolves.
func TestAlertBurnRateMultiWindow(t *testing.T) {
	const iv = int64(100)
	r := BurnRate("burn", "p99", 100, 0.25, 2, 8*iv, 2*iv, 0)
	r.MinPoints = 8

	// Short spike: 2 breaching points out of 8 → long frac 0.25, burn 1
	// — under Factor 2, never fires.
	spike := make([]float64, 16)
	for i := range spike {
		spike[i] = 50
	}
	spike[8], spike[9] = 200, 200
	if ts := stepSeries(t, r, iv, spike); firings(ts) != 0 {
		t.Fatalf("short spike fired burn-rate:\n%s", AlertLog(ts))
	}

	// Sustained breach: from point 8 on everything breaches. Long-window
	// frac crosses 0.5 (burn 2) at the 5th breaching point; fires, then
	// resolves once recovery dilutes the windows.
	sustained := make([]float64, 24)
	for i := range sustained {
		switch {
		case i < 8:
			sustained[i] = 50
		case i < 16:
			sustained[i] = 200
		default:
			sustained[i] = 50
		}
	}
	ts := stepSeries(t, r, iv, sustained)
	if firings(ts) != 1 {
		t.Fatalf("sustained breach fired %d times:\n%s", firings(ts), AlertLog(ts))
	}
	if last := ts[len(ts)-1]; last.From != Firing || last.To != Inactive {
		t.Fatalf("burn never resolved:\n%s", AlertLog(ts))
	}
}

func TestRuleValidation(t *testing.T) {
	bad := []Rule{
		{}, // no name/series
		{Name: "x", Series: "s", Kind: KindAbsence},  // no window
		{Name: "x", Series: "s", Kind: KindBurnRate}, // no budget
		Threshold("x", "s", ReduceMax, 0, 1, 0),      // windowed reduce, no window
		BurnRate("x", "s", 1, 0.1, 2, 100, 200, 0),   // short > long
	}
	for i, r := range bad {
		if err := r.defaults(); err == nil {
			t.Fatalf("rule %d validated: %+v", i, r)
		}
	}
}
