// The flight recorder: a bounded ring of recent operational notes
// (alert transitions, autoscaler actions, injected faults, breaker
// trips) plus the incident dumper — when a rule fires it freezes a
// scoped bundle: a ps-windowed trace slice and a canonical text report
// correlating everything that happened in the lookback window.

package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/telemetry"
)

// Note is one recorded operational event.
type Note struct {
	AtPs int64
	Kind string // "alert", "action", "fault", "admin", ...
	Text string
}

func (n Note) String() string {
	return fmt.Sprintf("%d %s %s", n.AtPs, n.Kind, n.Text)
}

// RecorderConfig parameterizes a flight recorder.
type RecorderConfig struct {
	// LookbackPs is the incident window: a bundle covers
	// [firingPs-LookbackPs, firingPs]. Zero selects 2ms.
	LookbackPs int64
	// NoteCap bounds the note ring. Zero selects 512.
	NoteCap int
	// MaxIncidents bounds captured bundles; later firings only count
	// Dropped. Zero selects 4.
	MaxIncidents int
}

// Recorder is the flight recorder. It is fed from inside engine events
// (scrape ticks, fault closures, autoscaler hooks), so insertion order
// is simulated-time order and everything it renders is deterministic.
type Recorder struct {
	cfg   RecorderConfig
	notes []Note // ring
	head  int
	n     int

	// Incidents are the captured bundles, in firing order.
	Incidents []Incident
	// Dropped counts firings past MaxIncidents.
	Dropped int
}

// NewRecorder builds a recorder.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.LookbackPs <= 0 {
		cfg.LookbackPs = 2_000_000_000 // 2ms
	}
	if cfg.NoteCap <= 0 {
		cfg.NoteCap = 512
	}
	if cfg.MaxIncidents <= 0 {
		cfg.MaxIncidents = 4
	}
	return &Recorder{cfg: cfg, notes: make([]Note, cfg.NoteCap)}
}

// Note appends an operational event to the ring (oldest dropped when
// full). Nil recorders absorb the call so call sites need no guards.
func (r *Recorder) Note(atPs int64, kind, text string) {
	if r == nil {
		return
	}
	if r.n < len(r.notes) {
		r.notes[(r.head+r.n)%len(r.notes)] = Note{AtPs: atPs, Kind: kind, Text: text}
		r.n++
		return
	}
	r.notes[r.head] = Note{AtPs: atPs, Kind: kind, Text: text}
	r.head = (r.head + 1) % len(r.notes)
}

// noteAt returns the i-th retained note, oldest first.
func (r *Recorder) noteAt(i int) Note { return r.notes[(r.head+i)%len(r.notes)] }

// Incident is one captured bundle.
type Incident struct {
	AtPs   int64  // firing instant
	Rule   string // the rule that fired
	FromPs int64  // window start (AtPs - LookbackPs, floored at 0)
	// Report is the canonical text report: the correlated timeline of
	// notes in the window plus a last-value summary of every series.
	Report string
	// Trace is the ps-windowed slice of the run's tracer (nil when the
	// run traced nothing).
	Trace *telemetry.Tracer
}

// Canonical renders the byte-compared bundle artifact: the text report
// plus a digest of the Perfetto trace slice (the slice itself can be
// megabytes; the digest pins it without bloating the comparison).
func (in Incident) Canonical() string {
	var b strings.Builder
	b.WriteString(in.Report)
	if in.Trace != nil {
		sum := sha256.Sum256(in.Trace.PerfettoJSON())
		fmt.Fprintf(&b, "trace_sha256 %s\n", hex.EncodeToString(sum[:]))
	}
	return b.String()
}

// trigger captures an incident for a rule that just fired. The scraper
// calls it from inside the scrape tick, after appending the firing
// transition to the note ring, so the bundle's timeline includes the
// triggering alert itself.
func (r *Recorder) trigger(atPs int64, rule string, sc *Scraper) {
	if r == nil {
		return
	}
	if len(r.Incidents) >= r.cfg.MaxIncidents {
		r.Dropped++
		return
	}
	from := atPs - r.cfg.LookbackPs
	if from < 0 {
		from = 0
	}
	var b strings.Builder
	fmt.Fprintf(&b, "incident rule=%s at=%d window=[%d,%d]\n", rule, atPs, from, atPs)
	b.WriteString("--- timeline ---\n")
	for i := 0; i < r.n; i++ {
		n := r.noteAt(i)
		if n.AtPs < from || n.AtPs > atPs {
			continue
		}
		b.WriteString(n.String())
		b.WriteByte('\n')
	}
	b.WriteString("--- series ---\n")
	sc.Store().Each(func(se *Series) {
		fmt.Fprintf(&b, "%s last=%g points=%d window_max=%g\n",
			se.Name(), se.LastValue(), se.Len(), se.MaxOver(atPs, r.cfg.LookbackPs))
	})
	in := Incident{AtPs: atPs, Rule: rule, FromPs: from, Report: b.String()}
	if tr := sc.cfg.Tracer; tr != nil {
		in.Trace = tr.Slice(from, atPs)
	}
	r.Incidents = append(r.Incidents, in)
}
