package obs

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// buildRun wires an engine, a registry with a deterministic synthetic
// workload (a latency gauge that breaches mid-run and a trip counter
// that bumps once), a traced scraper with a burn-rate and a breaker
// rule, and a recorder; returns everything after running to horizon.
func buildRun(t *testing.T) *Scraper {
	t.Helper()
	eng := sim.NewEngine()
	reg := telemetry.NewRegistry()
	lat, trips := 50.0, 0.0
	reg.Register("svc", telemetry.CollectorFunc(func(emit func(telemetry.Sample)) {
		emit(telemetry.Sample{Name: "p99", Value: lat})
		emit(telemetry.Sample{Name: "trips", Value: trips})
	}))
	const iv = 100 * sim.Us
	rec := NewRecorder(RecorderConfig{LookbackPs: 10 * iv, NoteCap: 64})
	tr := telemetry.New()
	sc, err := New(Config{
		Eng: eng, Reg: reg, IntervalPs: iv, SeriesCap: 256,
		Rules: []Rule{
			BurnRate("slo-burn", "svc.p99", 100, 0.25, 2, 8*iv, 2*iv, 0),
			Threshold("breaker", "svc.trips", ReduceDelta, 3*iv, 0.5, 0),
		},
		Tracer: tr, TraceSeries: []string{"svc.p99"},
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Latency breaches from 2ms to 4ms; a trip lands at 2.5ms.
	eng.At(2000*sim.Us, func() { lat = 500 })
	eng.At(2500*sim.Us, func() { trips = 1 })
	eng.At(4000*sim.Us, func() { lat = 50 })
	sc.Start()
	eng.RunUntil(8000 * sim.Us)
	return sc
}

// The scraper samples every interval into the store, the rules fire in
// the expected order, and the recorder captures bundles for both.
func TestScraperEndToEnd(t *testing.T) {
	sc := buildRun(t)
	if sc.Scrapes != 80 {
		t.Fatalf("Scrapes = %d, want 80", sc.Scrapes)
	}
	se := sc.Store().Series("svc.p99")
	if se.Len() != 80 {
		t.Fatalf("svc.p99 has %d points, want 80", se.Len())
	}
	if p := se.At(0); p.AtPs != 100*sim.Us || p.V != 50 {
		t.Fatalf("first point = %+v", p)
	}

	var order []string
	for _, tr := range sc.Transitions() {
		order = append(order, fmt.Sprintf("%s:%s", tr.Rule, tr.To))
	}
	want := []string{"slo-burn:firing", "breaker:firing", "breaker:inactive", "slo-burn:inactive"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("alert order = %v, want %v\nlog:\n%s", order, want, sc.AlertLogString())
	}

	rec := sc.Recorder()
	if len(rec.Incidents) != 2 || rec.Dropped != 0 {
		t.Fatalf("incidents = %d dropped = %d, want 2/0", len(rec.Incidents), rec.Dropped)
	}
	in := rec.Incidents[1] // the breaker, fired after the page
	if in.Rule != "breaker" || in.Trace == nil {
		t.Fatalf("incident = %+v", in)
	}
	// The bundle timeline must correlate the page that preceded the
	// breaker trip inside the lookback window.
	if want := "slo-burn inactive->firing"; !strings.Contains(in.Report, want) {
		t.Fatalf("incident report missing %q:\n%s", want, in.Report)
	}
	if !strings.Contains(in.Report, "svc.p99 last=") {
		t.Fatalf("incident report missing series summary:\n%s", in.Report)
	}
}

// Two identical runs produce byte-identical alert logs and incident
// bundles — the plane's core determinism contract.
func TestScraperDeterministicReplay(t *testing.T) {
	a, b := buildRun(t), buildRun(t)
	if a.AlertLogString() != b.AlertLogString() {
		t.Fatalf("alert logs diverged:\n%s\nvs:\n%s", a.AlertLogString(), b.AlertLogString())
	}
	ra, rb := a.Recorder().Incidents, b.Recorder().Incidents
	if len(ra) != len(rb) {
		t.Fatalf("incident counts diverged: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Canonical() != rb[i].Canonical() {
			t.Fatalf("incident %d bundle diverged:\n%s\nvs:\n%s", i, ra[i].Canonical(), rb[i].Canonical())
		}
	}
	if len(ra) > 0 && !strings.Contains(ra[0].Canonical(), "trace_sha256 ") {
		t.Fatalf("bundle canonical missing trace digest:\n%s", ra[0].Canonical())
	}
}

// Hooks run in subscription order, after sampling and alerting, inside
// the scrape event; a hook sees the point scraped this tick.
func TestScraperHooksOrderAndFreshness(t *testing.T) {
	eng := sim.NewEngine()
	reg := telemetry.NewRegistry()
	v := 0.0
	reg.Register("g", telemetry.CollectorFunc(func(emit func(telemetry.Sample)) {
		emit(telemetry.Sample{Name: "v", Value: v})
	}))
	sc, err := New(Config{Eng: eng, Reg: reg, IntervalPs: 100})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	sc.OnScrape(func(atPs int64, st *Store) {
		got = append(got, fmt.Sprintf("a@%d=%g", atPs, st.LastValue("g.v")))
	})
	sc.OnScrape(func(atPs int64, st *Store) {
		got = append(got, fmt.Sprintf("b@%d", atPs))
	})
	eng.At(150, func() { v = 7 })
	sc.Start()
	eng.RunUntil(200)
	want := "[a@100=0 b@100 a@200=7 b@200]"
	if fmt.Sprint(got) != want {
		t.Fatalf("hook trace = %v, want %s", got, want)
	}
}

// MaxIncidents caps capture; later firings only count Dropped.
func TestRecorderIncidentCap(t *testing.T) {
	eng := sim.NewEngine()
	reg := telemetry.NewRegistry()
	v := 0.0
	reg.Register("g", telemetry.CollectorFunc(func(emit func(telemetry.Sample)) {
		emit(telemetry.Sample{Name: "v", Value: v})
	}))
	rec := NewRecorder(RecorderConfig{MaxIncidents: 2, NoteCap: 8})
	sc, err := New(Config{
		Eng: eng, Reg: reg, IntervalPs: 100,
		Rules:    []Rule{Threshold("hi", "g.v", ReduceLast, 0, 5, 0)},
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Flip the gauge across the threshold slowly enough to re-fire 4x.
	for i := int64(0); i < 4; i++ {
		at := i * 300
		eng.At(at+50, func() { v = 10 })
		eng.At(at+150, func() { v = 0 })
	}
	sc.Start()
	eng.RunUntil(1300)
	if len(rec.Incidents) != 2 || rec.Dropped != 2 {
		t.Fatalf("incidents = %d dropped = %d, want 2/2", len(rec.Incidents), rec.Dropped)
	}
}
