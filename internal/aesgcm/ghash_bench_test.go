package aesgcm

import "testing"

func ghashInput(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*131 + 17)
	}
	return data
}

// BenchmarkGHASHUpdate8bit measures the production GHASH hot loop: the
// 256-entry byte-indexed table with the folded x^8 reduction.
func BenchmarkGHASHUpdate8bit(b *testing.B) {
	h := make([]byte, 16)
	h[3] = 0x5A
	g := NewGHASH(h)
	data := ghashInput(16384)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Update(data)
	}
}

// BenchmarkGHASHUpdate4bit is the previous 4-bit windowed path, kept as
// the ablation baseline the 8-bit table is measured against.
func BenchmarkGHASHUpdate4bit(b *testing.B) {
	h := make([]byte, 16)
	h[3] = 0x5A
	t := newMulTable(LoadEl(h))
	data := ghashInput(16384)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var y FieldEl
		for off := 0; off < len(data); off += BlockSize {
			y = t.mul(y.Xor(LoadEl(data[off : off+BlockSize])))
		}
	}
}

// TestMulTable8MatchesBitSerial cross-checks the 8-bit table multiply
// against the bit-serial reference Mul on varied elements.
func TestMulTable8MatchesBitSerial(t *testing.T) {
	h := FieldEl{Hi: 0x66e94bd4ef8a2c3b, Lo: 0x884cfa59ca342b2e}
	tab := newMulTable8(h)
	tab4 := newMulTable(h)
	elems := []FieldEl{
		{},
		{Hi: 1},
		{Lo: 1},
		{Hi: ^uint64(0), Lo: ^uint64(0)},
		{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210},
	}
	x := FieldEl{Hi: 0xdeadbeefcafebabe, Lo: 0x0102030405060708}
	for i := 0; i < 64; i++ {
		elems = append(elems, x)
		x = mulByX(x.Xor(FieldEl{Hi: uint64(i) << 32, Lo: ^uint64(i)}))
	}
	for _, e := range elems {
		want := e.Mul(h)
		if got := tab.mul(e); got != want {
			t.Fatalf("mulTable8.mul(%x,%x) = %x,%x want %x,%x", e.Hi, e.Lo, got.Hi, got.Lo, want.Hi, want.Lo)
		}
		if got4 := tab4.mul(e); got4 != want {
			t.Fatalf("mulTable.mul(%x,%x) = %x,%x want %x,%x", e.Hi, e.Lo, got4.Hi, got4.Lo, want.Hi, want.Lo)
		}
	}
}
