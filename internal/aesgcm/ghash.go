package aesgcm

import "encoding/binary"

// FieldEl is an element of GF(2^128) in the GCM bit ordering (the first
// byte of the block holds the polynomial's lowest-degree coefficients in
// its most significant bit).
type FieldEl struct {
	Hi, Lo uint64 // Hi holds bytes 0..7 of the block, big-endian
}

// LoadEl reads a 16-byte block as a field element.
func LoadEl(b []byte) FieldEl {
	return FieldEl{
		Hi: binary.BigEndian.Uint64(b[0:8]),
		Lo: binary.BigEndian.Uint64(b[8:16]),
	}
}

// Store writes the field element into a 16-byte block.
func (e FieldEl) Store(b []byte) {
	binary.BigEndian.PutUint64(b[0:8], e.Hi)
	binary.BigEndian.PutUint64(b[8:16], e.Lo)
}

// Xor returns e ^ o (field addition).
func (e FieldEl) Xor(o FieldEl) FieldEl {
	return FieldEl{Hi: e.Hi ^ o.Hi, Lo: e.Lo ^ o.Lo}
}

// IsZero reports whether the element is the additive identity.
func (e FieldEl) IsZero() bool { return e.Hi == 0 && e.Lo == 0 }

// gcmR is the reduction constant for GF(2^128) with GCM's polynomial
// x^128 + x^7 + x^2 + x + 1 in the shifted representation.
const gcmR = 0xe100000000000000

// Mul returns the GF(2^128) product e*o under the GCM conventions. The
// bit-serial loop mirrors what a hardware GF multiplier does per cycle;
// the simulator charges its cost separately, so clarity wins over speed
// here (a 4-bit windowed variant is used by GHASH's hot path below).
func (e FieldEl) Mul(o FieldEl) FieldEl {
	var z FieldEl
	v := o
	for i := 0; i < 128; i++ {
		var bit uint64
		if i < 64 {
			bit = (e.Hi >> (63 - uint(i))) & 1
		} else {
			bit = (e.Lo >> (127 - uint(i))) & 1
		}
		if bit == 1 {
			z.Hi ^= v.Hi
			z.Lo ^= v.Lo
		}
		lsb := v.Lo & 1
		v.Lo = v.Lo>>1 | v.Hi<<63
		v.Hi >>= 1
		if lsb == 1 {
			v.Hi ^= gcmR
		}
	}
	return z
}

// mulTable is a 16-entry table of x*H for the 4-bit windowed multiply,
// indexed by nibble value. Building it once per hash subkey amortizes the
// bit-serial work across all blocks, the same trade hardware GHASH
// pipelines make.
type mulTable [16]FieldEl

func newMulTable(h FieldEl) *mulTable {
	var t mulTable
	// t[i] = i(h) where the 4-bit index is interpreted in the GCM bit
	// order: index bit 3 (MSB of the nibble) is the lowest-degree term.
	t[8] = h // 0b1000: coefficient of x^0 within the nibble
	for i := 4; i > 0; i >>= 1 {
		t[i] = mulByX(t[i*2])
	}
	for i := 2; i < 16; i *= 2 {
		for j := 1; j < i; j++ {
			t[i+j] = t[i].Xor(t[j])
		}
	}
	return &t
}

// mulByX multiplies by the field element x (a one-bit right shift in the
// GCM representation, with reduction).
func mulByX(v FieldEl) FieldEl {
	lsb := v.Lo & 1
	v.Lo = v.Lo>>1 | v.Hi<<63
	v.Hi >>= 1
	if lsb == 1 {
		v.Hi ^= gcmR
	}
	return v
}

// mul multiplies y by the table's hash subkey using a 4-bit-windowed
// Horner evaluation. In the GCM representation the LSB end of Lo holds
// the highest-degree coefficients, so walking low nibbles first visits
// terms in descending degree, exactly what Horner needs.
func (t *mulTable) mul(y FieldEl) FieldEl {
	var z FieldEl
	process := func(word uint64) {
		for i := 0; i < 16; i++ {
			nib := word & 0xf
			word >>= 4
			// z = z * x^4, then add this nibble's contribution.
			z = mulByX(mulByX(mulByX(mulByX(z))))
			z = z.Xor(t[nib])
		}
	}
	process(y.Lo)
	process(y.Hi)
	return z
}

// GHASH computes the GHASH function of SP 800-38D over the given blocks
// with hash subkey h. Data is processed in 16-byte blocks; a short final
// block is zero-padded (callers compose AAD/ciphertext/length blocks).
type GHASH struct {
	table *mulTable
	y     FieldEl
}

// NewGHASH creates a GHASH instance keyed by the 16-byte hash subkey.
func NewGHASH(h []byte) *GHASH {
	return &GHASH{table: newMulTable(LoadEl(h))}
}

// Update absorbs data, zero-padding the final short block if any.
func (g *GHASH) Update(data []byte) {
	for len(data) >= BlockSize {
		g.y = g.table.mul(g.y.Xor(LoadEl(data[:BlockSize])))
		data = data[BlockSize:]
	}
	if len(data) > 0 {
		var block [BlockSize]byte
		copy(block[:], data)
		g.y = g.table.mul(g.y.Xor(LoadEl(block[:])))
	}
}

// UpdateLengths absorbs the standard GCM length block (bit lengths of AAD
// and ciphertext).
func (g *GHASH) UpdateLengths(aadBytes, ctBytes int) {
	var block [BlockSize]byte
	binary.BigEndian.PutUint64(block[0:8], uint64(aadBytes)*8)
	binary.BigEndian.PutUint64(block[8:16], uint64(ctBytes)*8)
	g.Update(block[:])
}

// Sum writes the current GHASH value into a 16-byte slice and returns it.
func (g *GHASH) Sum(dst []byte) []byte {
	if len(dst) < BlockSize {
		panic("aesgcm: ghash sum buffer too short")
	}
	g.y.Store(dst[:BlockSize])
	return dst[:BlockSize]
}

// Reset restores the initial state, keeping the subkey.
func (g *GHASH) Reset() { g.y = FieldEl{} }

// HPowers precomputes powers of the hash subkey H. The paper's TLS DSA
// computes the i-th powers of H "in strides of 4" as soon as the source
// buffer is registered, so the GHASH contributions of different 64-byte
// cachelines (4 AES blocks each) have no dependency chain (§V-A). Powers
// are 1-indexed: Power(i) == H^i.
type HPowers struct {
	h      FieldEl
	powers []FieldEl // powers[i] = H^(i+1)
}

// Stride is the number of AES blocks per 64-byte cacheline; powers are
// generated stride-first to model the hardware's four parallel chains.
const Stride = 4

// NewHPowers precomputes n powers of the subkey. The generation order
// models the DSA: four independent multiplication chains, one per block
// lane, each advancing by H^4 per step.
func NewHPowers(h []byte, n int) *HPowers {
	he := LoadEl(h)
	hp := &HPowers{h: he, powers: make([]FieldEl, n)}
	if n == 0 {
		return hp
	}
	// Seed the first stride serially: H^1..H^4.
	hp.powers[0] = he
	for i := 1; i < Stride && i < n; i++ {
		hp.powers[i] = hp.powers[i-1].Mul(he)
	}
	if n <= Stride {
		return hp
	}
	h4 := hp.powers[Stride-1]
	// Four independent lanes: lane L computes H^(L+1), H^(L+5), ...
	for lane := 0; lane < Stride; lane++ {
		for i := lane + Stride; i < n; i += Stride {
			hp.powers[i] = hp.powers[i-Stride].Mul(h4)
		}
	}
	return hp
}

// Power returns H^i (1-indexed). It panics if i is out of the
// precomputed range, mirroring the fixed-size Config Memory region that
// holds the powers in hardware.
func (p *HPowers) Power(i int) FieldEl {
	if i < 1 || i > len(p.powers) {
		panic("aesgcm: H power out of precomputed range")
	}
	return p.powers[i-1]
}

// Count returns how many powers were precomputed.
func (p *HPowers) Count() int { return len(p.powers) }
