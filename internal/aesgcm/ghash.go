package aesgcm

import "encoding/binary"

// FieldEl is an element of GF(2^128) in the GCM bit ordering (the first
// byte of the block holds the polynomial's lowest-degree coefficients in
// its most significant bit).
type FieldEl struct {
	Hi, Lo uint64 // Hi holds bytes 0..7 of the block, big-endian
}

// LoadEl reads a 16-byte block as a field element.
func LoadEl(b []byte) FieldEl {
	return FieldEl{
		Hi: binary.BigEndian.Uint64(b[0:8]),
		Lo: binary.BigEndian.Uint64(b[8:16]),
	}
}

// Store writes the field element into a 16-byte block.
func (e FieldEl) Store(b []byte) {
	binary.BigEndian.PutUint64(b[0:8], e.Hi)
	binary.BigEndian.PutUint64(b[8:16], e.Lo)
}

// Xor returns e ^ o (field addition).
func (e FieldEl) Xor(o FieldEl) FieldEl {
	return FieldEl{Hi: e.Hi ^ o.Hi, Lo: e.Lo ^ o.Lo}
}

// IsZero reports whether the element is the additive identity.
func (e FieldEl) IsZero() bool { return e.Hi == 0 && e.Lo == 0 }

// gcmR is the reduction constant for GF(2^128) with GCM's polynomial
// x^128 + x^7 + x^2 + x + 1 in the shifted representation.
const gcmR = 0xe100000000000000

// Mul returns the GF(2^128) product e*o under the GCM conventions. The
// bit-serial loop mirrors what a hardware GF multiplier does per cycle;
// the simulator charges its cost separately, so clarity wins over speed
// here (a 4-bit windowed variant is used by GHASH's hot path below).
func (e FieldEl) Mul(o FieldEl) FieldEl {
	var z FieldEl
	v := o
	for i := 0; i < 128; i++ {
		var bit uint64
		if i < 64 {
			bit = (e.Hi >> (63 - uint(i))) & 1
		} else {
			bit = (e.Lo >> (127 - uint(i))) & 1
		}
		if bit == 1 {
			z.Hi ^= v.Hi
			z.Lo ^= v.Lo
		}
		lsb := v.Lo & 1
		v.Lo = v.Lo>>1 | v.Hi<<63
		v.Hi >>= 1
		if lsb == 1 {
			v.Hi ^= gcmR
		}
	}
	return z
}

// mulTable is a 16-entry table of x*H for the 4-bit windowed multiply,
// indexed by nibble value. Building it once per hash subkey amortizes the
// bit-serial work across all blocks, the same trade hardware GHASH
// pipelines make.
type mulTable [16]FieldEl

func newMulTable(h FieldEl) *mulTable {
	var t mulTable
	// t[i] = i(h) where the 4-bit index is interpreted in the GCM bit
	// order: index bit 3 (MSB of the nibble) is the lowest-degree term.
	t[8] = h // 0b1000: coefficient of x^0 within the nibble
	for i := 4; i > 0; i >>= 1 {
		t[i] = mulByX(t[i*2])
	}
	for i := 2; i < 16; i *= 2 {
		for j := 1; j < i; j++ {
			t[i+j] = t[i].Xor(t[j])
		}
	}
	return &t
}

// mulByX multiplies by the field element x (a one-bit right shift in the
// GCM representation, with reduction).
func mulByX(v FieldEl) FieldEl {
	lsb := v.Lo & 1
	v.Lo = v.Lo>>1 | v.Hi<<63
	v.Hi >>= 1
	if lsb == 1 {
		v.Hi ^= gcmR
	}
	return v
}

// mul multiplies y by the table's hash subkey using a 4-bit-windowed
// Horner evaluation. In the GCM representation the LSB end of Lo holds
// the highest-degree coefficients, so walking low nibbles first visits
// terms in descending degree, exactly what Horner needs. Kept as the
// reference/ablation path; the GHASH hot loop uses the 8-bit table.
func (t *mulTable) mul(y FieldEl) FieldEl {
	var z FieldEl
	process := func(word uint64) {
		for i := 0; i < 16; i++ {
			nib := word & 0xf
			word >>= 4
			// z = z * x^4, then add this nibble's contribution.
			z = mulByX(mulByX(mulByX(mulByX(z))))
			z = z.Xor(t[nib])
		}
	}
	process(y.Lo)
	process(y.Hi)
	return z
}

// mulTable8 is the 256-entry byte-indexed multiplication table: the same
// Horner structure as mulTable, but consuming a whole byte per step so a
// block costs 16 table folds instead of 32 nibble folds. Index bit 7
// (the byte's MSB) is the lowest-degree term, matching the GCM bit
// order of the 4-bit table.
type mulTable8 [256]FieldEl

func newMulTable8(h FieldEl) *mulTable8 {
	var t mulTable8
	t[0x80] = h // 0b1000_0000: coefficient of x^0 within the byte
	for i := 0x40; i > 0; i >>= 1 {
		t[i] = mulByX(t[i*2])
	}
	for i := 2; i < 256; i *= 2 {
		for j := 1; j < i; j++ {
			t[i+j] = t[i].Xor(t[j])
		}
	}
	return &t
}

// reduce8 folds the 8 bits shifted out of a field element during a
// combined z*x^8 step back into the high word: entry b is the XOR of
// gcmR >> (7-i) for every set bit i, the net effect of the eight
// bit-serial reductions mulByX would perform one at a time.
var reduce8 [256]uint64

func init() {
	for b := 0; b < 256; b++ {
		var r uint64
		for i := 0; i < 8; i++ {
			if b>>i&1 == 1 {
				r ^= gcmR >> (7 - i)
			}
		}
		reduce8[b] = r
	}
}

// mul multiplies y by the hash subkey via byte-wise Horner: z = z*x^8
// (one shift plus a table-folded reduction) then one 256-entry fold per
// byte, low bytes first (they hold the highest-degree coefficients).
func (t *mulTable8) mul(y FieldEl) FieldEl {
	var z FieldEl
	word := y.Lo
	for i := 0; i < 16; i++ {
		if i == 8 {
			word = y.Hi
		}
		b := word & 0xff
		word >>= 8
		rb := z.Lo & 0xff
		z.Lo = z.Lo>>8 | z.Hi<<56
		z.Hi = z.Hi>>8 ^ reduce8[rb]
		e := &t[b]
		z.Hi ^= e.Hi
		z.Lo ^= e.Lo
	}
	return z
}

// GHASH computes the GHASH function of SP 800-38D over the given blocks
// with hash subkey h. Data is processed in 16-byte blocks; a short final
// block is zero-padded (callers compose AAD/ciphertext/length blocks).
type GHASH struct {
	table *mulTable8
	y     FieldEl
}

// NewGHASH creates a GHASH instance keyed by the 16-byte hash subkey.
// The 256-entry table build is a per-subkey cost; key it once and reuse
// (GCM caches it per key).
func NewGHASH(h []byte) *GHASH {
	return &GHASH{table: newMulTable8(LoadEl(h))}
}

// Update absorbs data, zero-padding the final short block if any.
func (g *GHASH) Update(data []byte) {
	for len(data) >= BlockSize {
		g.y = g.table.mul(g.y.Xor(LoadEl(data[:BlockSize])))
		data = data[BlockSize:]
	}
	if len(data) > 0 {
		var block [BlockSize]byte
		copy(block[:], data)
		g.y = g.table.mul(g.y.Xor(LoadEl(block[:])))
	}
}

// UpdateLengths absorbs the standard GCM length block (bit lengths of AAD
// and ciphertext).
func (g *GHASH) UpdateLengths(aadBytes, ctBytes int) {
	var block [BlockSize]byte
	binary.BigEndian.PutUint64(block[0:8], uint64(aadBytes)*8)
	binary.BigEndian.PutUint64(block[8:16], uint64(ctBytes)*8)
	g.Update(block[:])
}

// Sum writes the current GHASH value into a 16-byte slice and returns it.
func (g *GHASH) Sum(dst []byte) []byte {
	if len(dst) < BlockSize {
		panic("aesgcm: ghash sum buffer too short")
	}
	g.y.Store(dst[:BlockSize])
	return dst[:BlockSize]
}

// Reset restores the initial state, keeping the subkey.
func (g *GHASH) Reset() { g.y = FieldEl{} }

// HPowers precomputes powers of the hash subkey H. The paper's TLS DSA
// computes the i-th powers of H "in strides of 4" as soon as the source
// buffer is registered, so the GHASH contributions of different 64-byte
// cachelines (4 AES blocks each) have no dependency chain (§V-A). Powers
// are 1-indexed: Power(i) == H^i.
type HPowers struct {
	h      FieldEl
	powers []FieldEl // powers[i] = H^(i+1)
}

// Stride is the number of AES blocks per 64-byte cacheline; powers are
// generated stride-first to model the hardware's four parallel chains.
const Stride = 4

// NewHPowers precomputes n powers of the subkey. The generation order
// models the DSA: four independent multiplication chains, one per block
// lane, each advancing by H^4 per step.
func NewHPowers(h []byte, n int) *HPowers {
	he := LoadEl(h)
	hp := &HPowers{h: he, powers: make([]FieldEl, n)}
	if n == 0 {
		return hp
	}
	// Seed the first stride serially: H^1..H^4.
	hp.powers[0] = he
	for i := 1; i < Stride && i < n; i++ {
		hp.powers[i] = hp.powers[i-1].Mul(he)
	}
	if n <= Stride {
		return hp
	}
	h4 := hp.powers[Stride-1]
	// Four independent lanes: lane L computes H^(L+1), H^(L+5), ...
	for lane := 0; lane < Stride; lane++ {
		for i := lane + Stride; i < n; i += Stride {
			hp.powers[i] = hp.powers[i-Stride].Mul(h4)
		}
	}
	return hp
}

// Power returns H^i (1-indexed). It panics if i is out of the
// precomputed range, mirroring the fixed-size Config Memory region that
// holds the powers in hardware.
func (p *HPowers) Power(i int) FieldEl {
	if i < 1 || i > len(p.powers) {
		panic("aesgcm: H power out of precomputed range")
	}
	return p.powers[i-1]
}

// Count returns how many powers were precomputed.
func (p *HPowers) Count() int { return len(p.powers) }
