package aesgcm

import (
	"bytes"
	stdaes "crypto/aes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// FIPS-197 Appendix C known-answer vectors.
func TestAESKnownAnswers(t *testing.T) {
	cases := []struct{ key, pt, ct string }{
		{"000102030405060708090a0b0c0d0e0f", "00112233445566778899aabbccddeeff", "69c4e0d86a7b0430d8cdb78070b4c55a"},
		{"000102030405060708090a0b0c0d0e0f1011121314151617", "00112233445566778899aabbccddeeff", "dda97ca4864cdfe06eaf70a0ec0d7191"},
		{"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f", "00112233445566778899aabbccddeeff", "8ea2b7ca516745bfeafc49904b496089"},
	}
	for _, c := range cases {
		cipher, err := NewCipher(unhex(t, c.key))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		cipher.Encrypt(got, unhex(t, c.pt))
		if want := unhex(t, c.ct); !bytes.Equal(got, want) {
			t.Errorf("key %s: enc = %x, want %x", c.key, got, want)
		}
		back := make([]byte, 16)
		cipher.Decrypt(back, got)
		if want := unhex(t, c.pt); !bytes.Equal(back, want) {
			t.Errorf("key %s: dec = %x, want %x", c.key, back, want)
		}
	}
}

func TestAESInvalidKeySizes(t *testing.T) {
	for _, n := range []int{0, 8, 15, 17, 31, 33} {
		if _, err := NewCipher(make([]byte, n)); err == nil {
			t.Errorf("key size %d accepted", n)
		}
	}
}

func TestAESMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ks := range []int{16, 24, 32} {
		key := make([]byte, ks)
		rng.Read(key)
		ours, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stdaes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			pt := make([]byte, 16)
			rng.Read(pt)
			a, b := make([]byte, 16), make([]byte, 16)
			ours.Encrypt(a, pt)
			ref.Encrypt(b, pt)
			if !bytes.Equal(a, b) {
				t.Fatalf("key=%d enc mismatch: %x vs %x", ks, a, b)
			}
			ours.Decrypt(a, b)
			if !bytes.Equal(a, pt) {
				t.Fatalf("key=%d dec mismatch", ks)
			}
		}
	}
}

func TestAESEncryptDecryptInverse(t *testing.T) {
	f := func(key [16]byte, pt [16]byte) bool {
		c, err := NewCipher(key[:])
		if err != nil {
			return false
		}
		var ct, back [16]byte
		c.Encrypt(ct[:], pt[:])
		c.Decrypt(back[:], ct[:])
		return back == pt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAESInPlace(t *testing.T) {
	c, _ := NewCipher(make([]byte, 16))
	buf := []byte("0123456789abcdef")
	orig := append([]byte(nil), buf...)
	c.Encrypt(buf, buf)
	if bytes.Equal(buf, orig) {
		t.Fatal("in-place encrypt did nothing")
	}
	c.Decrypt(buf, buf)
	if !bytes.Equal(buf, orig) {
		t.Fatal("in-place round trip failed")
	}
}

func TestAESShortBlockPanics(t *testing.T) {
	c, _ := NewCipher(make([]byte, 16))
	for _, f := range []func(){
		func() { c.Encrypt(make([]byte, 16), make([]byte, 15)) },
		func() { c.Encrypt(make([]byte, 15), make([]byte, 16)) },
		func() { c.Decrypt(make([]byte, 16), make([]byte, 15)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on short block")
				}
			}()
			f()
		}()
	}
}

func TestSboxIsPermutationAndInverse(t *testing.T) {
	seen := map[byte]bool{}
	for i := 0; i < 256; i++ {
		v := sbox[i]
		if seen[v] {
			t.Fatalf("sbox not a permutation: duplicate %#x", v)
		}
		seen[v] = true
		if isbox[v] != byte(i) {
			t.Fatalf("isbox[sbox[%d]] = %d", i, isbox[v])
		}
	}
	// FIPS-197 spot values.
	if sbox[0x00] != 0x63 || sbox[0x53] != 0xed || sbox[0xff] != 0x16 {
		t.Fatalf("sbox spot check failed: %x %x %x", sbox[0x00], sbox[0x53], sbox[0xff])
	}
}

func BenchmarkAESEncryptBlock(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	src := make([]byte, 16)
	dst := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(dst, src)
	}
}
