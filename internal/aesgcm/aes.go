// Package aesgcm is a from-scratch implementation of AES (128/192/256)
// and the Galois/Counter Mode of operation, structured the way
// SmartDIMM's TLS DSA computes it (§V-A of the paper):
//
//   - the CTR keystream is randomly accessible, so any 64-byte cacheline
//     of a TLS record can be (de/en)crypted independently and out of
//     order as rdCAS commands arrive at the DIMM (Observation 4:
//     incremental computability);
//   - GHASH powers of the hash subkey H are precomputed in strides of 4
//     to break the dependency chain between the GHASH contributions of
//     different cachelines (Fig. 7);
//   - the hash subkey H and the encrypted initialization vector EIV are
//     computed by the *caller* (the CPU side, one AES-NI instruction in
//     the paper) and handed to the engine through its config, mirroring
//     the CPU/DIMM split.
//
// Functional correctness is validated in the tests against NIST SP
// 800-38D vectors and cross-checked against crypto/cipher's GCM on
// random inputs.
package aesgcm

import (
	"encoding/binary"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// sbox and inverse sbox are generated at init from the GF(2^8) inverse
// plus the AES affine transform, rather than hardcoded, to keep the
// implementation auditable.
var (
	sbox  [256]byte
	isbox [256]byte

	// Precomputed GF(2^8) constant-multiplication tables for the
	// MixColumns (x2, x3) and InvMixColumns (x9, x11, x13, x14) matrices.
	mul2, mul3, mul9, mul11, mul13, mul14 [256]byte
)

// gf8Mul multiplies two elements of GF(2^8) modulo x^8+x^4+x^3+x+1.
func gf8Mul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

func init() {
	// Build GF(2^8) inverses by brute force (256*256 is trivial), then
	// apply the affine transform.
	var inv [256]byte
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			if gf8Mul(byte(a), byte(b)) == 1 {
				inv[a] = byte(b)
				break
			}
		}
	}
	for i := 0; i < 256; i++ {
		x := inv[i]
		// Affine: b_i = x_i ^ x_{i+4} ^ x_{i+5} ^ x_{i+6} ^ x_{i+7} ^ c_i
		y := x ^ rotl8(x, 1) ^ rotl8(x, 2) ^ rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63
		sbox[i] = y
		isbox[y] = byte(i)
	}
	for i := 0; i < 256; i++ {
		b := byte(i)
		mul2[i] = gf8Mul(b, 2)
		mul3[i] = gf8Mul(b, 3)
		mul9[i] = gf8Mul(b, 9)
		mul11[i] = gf8Mul(b, 11)
		mul13[i] = gf8Mul(b, 13)
		mul14[i] = gf8Mul(b, 14)
	}
}

func rotl8(x byte, n uint) byte { return x<<n | x>>(8-n) }

// Cipher is an AES block cipher with an expanded key schedule.
type Cipher struct {
	enc    []uint32 // round keys for encryption
	dec    []uint32 // round keys for decryption (equivalent inverse cipher)
	rounds int
}

// NewCipher expands key (16, 24, or 32 bytes) into a Cipher.
func NewCipher(key []byte) (*Cipher, error) {
	switch len(key) {
	case 16, 24, 32:
	default:
		return nil, fmt.Errorf("aesgcm: invalid key size %d", len(key))
	}
	nk := len(key) / 4
	rounds := nk + 6
	c := &Cipher{rounds: rounds}
	n := 4 * (rounds + 1)
	c.enc = make([]uint32, n)
	for i := 0; i < nk; i++ {
		c.enc[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	rcon := uint32(1)
	for i := nk; i < n; i++ {
		t := c.enc[i-1]
		if i%nk == 0 {
			t = subWord(rotWord(t)) ^ (rcon << 24)
			rcon = uint32(gf8Mul(byte(rcon), 2))
		} else if nk > 6 && i%nk == 4 {
			t = subWord(t)
		}
		c.enc[i] = c.enc[i-nk] ^ t
	}
	// Equivalent inverse cipher key schedule: reverse round order and
	// apply InvMixColumns to the middle round keys.
	c.dec = make([]uint32, n)
	for i := 0; i <= rounds; i++ {
		for j := 0; j < 4; j++ {
			w := c.enc[4*(rounds-i)+j]
			if i != 0 && i != rounds {
				w = invMixColumnsWord(w)
			}
			c.dec[4*i+j] = w
		}
	}
	return c, nil
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

func invMixColumnsWord(w uint32) uint32 {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], w)
	var o [4]byte
	o[0] = gf8Mul(b[0], 14) ^ gf8Mul(b[1], 11) ^ gf8Mul(b[2], 13) ^ gf8Mul(b[3], 9)
	o[1] = gf8Mul(b[0], 9) ^ gf8Mul(b[1], 14) ^ gf8Mul(b[2], 11) ^ gf8Mul(b[3], 13)
	o[2] = gf8Mul(b[0], 13) ^ gf8Mul(b[1], 9) ^ gf8Mul(b[2], 14) ^ gf8Mul(b[3], 11)
	o[3] = gf8Mul(b[0], 11) ^ gf8Mul(b[1], 13) ^ gf8Mul(b[2], 9) ^ gf8Mul(b[3], 14)
	return binary.BigEndian.Uint32(o[:])
}

// Encrypt encrypts one 16-byte block from src into dst (may alias).
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aesgcm: block too short")
	}
	s0 := binary.BigEndian.Uint32(src[0:4]) ^ c.enc[0]
	s1 := binary.BigEndian.Uint32(src[4:8]) ^ c.enc[1]
	s2 := binary.BigEndian.Uint32(src[8:12]) ^ c.enc[2]
	s3 := binary.BigEndian.Uint32(src[12:16]) ^ c.enc[3]
	for r := 1; r < c.rounds; r++ {
		t0 := encRound(s0, s1, s2, s3) ^ c.enc[4*r]
		t1 := encRound(s1, s2, s3, s0) ^ c.enc[4*r+1]
		t2 := encRound(s2, s3, s0, s1) ^ c.enc[4*r+2]
		t3 := encRound(s3, s0, s1, s2) ^ c.enc[4*r+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
	}
	// Final round: SubBytes + ShiftRows, no MixColumns.
	r := c.rounds
	t0 := finalRound(s0, s1, s2, s3) ^ c.enc[4*r]
	t1 := finalRound(s1, s2, s3, s0) ^ c.enc[4*r+1]
	t2 := finalRound(s2, s3, s0, s1) ^ c.enc[4*r+2]
	t3 := finalRound(s3, s0, s1, s2) ^ c.enc[4*r+3]
	binary.BigEndian.PutUint32(dst[0:4], t0)
	binary.BigEndian.PutUint32(dst[4:8], t1)
	binary.BigEndian.PutUint32(dst[8:12], t2)
	binary.BigEndian.PutUint32(dst[12:16], t3)
}

// encRound computes one column of SubBytes+ShiftRows+MixColumns for the
// state columns (a,b,c,d) where a supplies the top byte.
func encRound(a, b, c, d uint32) uint32 {
	x0 := sbox[a>>24]
	x1 := sbox[b>>16&0xff]
	x2 := sbox[c>>8&0xff]
	x3 := sbox[d&0xff]
	return uint32(mul2[x0]^mul3[x1]^x2^x3)<<24 |
		uint32(x0^mul2[x1]^mul3[x2]^x3)<<16 |
		uint32(x0^x1^mul2[x2]^mul3[x3])<<8 |
		uint32(mul3[x0]^x1^x2^mul2[x3])
}

func finalRound(a, b, c, d uint32) uint32 {
	return uint32(sbox[a>>24])<<24 | uint32(sbox[b>>16&0xff])<<16 |
		uint32(sbox[c>>8&0xff])<<8 | uint32(sbox[d&0xff])
}

// Decrypt decrypts one 16-byte block from src into dst (may alias).
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aesgcm: block too short")
	}
	s0 := binary.BigEndian.Uint32(src[0:4]) ^ c.dec[0]
	s1 := binary.BigEndian.Uint32(src[4:8]) ^ c.dec[1]
	s2 := binary.BigEndian.Uint32(src[8:12]) ^ c.dec[2]
	s3 := binary.BigEndian.Uint32(src[12:16]) ^ c.dec[3]
	for r := 1; r < c.rounds; r++ {
		t0 := decRound(s0, s3, s2, s1) ^ c.dec[4*r]
		t1 := decRound(s1, s0, s3, s2) ^ c.dec[4*r+1]
		t2 := decRound(s2, s1, s0, s3) ^ c.dec[4*r+2]
		t3 := decRound(s3, s2, s1, s0) ^ c.dec[4*r+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
	}
	r := c.rounds
	t0 := invFinalRound(s0, s3, s2, s1) ^ c.dec[4*r]
	t1 := invFinalRound(s1, s0, s3, s2) ^ c.dec[4*r+1]
	t2 := invFinalRound(s2, s1, s0, s3) ^ c.dec[4*r+2]
	t3 := invFinalRound(s3, s2, s1, s0) ^ c.dec[4*r+3]
	binary.BigEndian.PutUint32(dst[0:4], t0)
	binary.BigEndian.PutUint32(dst[4:8], t1)
	binary.BigEndian.PutUint32(dst[8:12], t2)
	binary.BigEndian.PutUint32(dst[12:16], t3)
}

// decRound computes one column of InvSubBytes+InvShiftRows+InvMixColumns
// for the equivalent inverse cipher.
func decRound(a, b, c, d uint32) uint32 {
	x0 := isbox[a>>24]
	x1 := isbox[b>>16&0xff]
	x2 := isbox[c>>8&0xff]
	x3 := isbox[d&0xff]
	return uint32(mul14[x0]^mul11[x1]^mul13[x2]^mul9[x3])<<24 |
		uint32(mul9[x0]^mul14[x1]^mul11[x2]^mul13[x3])<<16 |
		uint32(mul13[x0]^mul9[x1]^mul14[x2]^mul11[x3])<<8 |
		uint32(mul11[x0]^mul13[x1]^mul9[x2]^mul14[x3])
}

func invFinalRound(a, b, c, d uint32) uint32 {
	return uint32(isbox[a>>24])<<24 | uint32(isbox[b>>16&0xff])<<16 |
		uint32(isbox[c>>8&0xff])<<8 | uint32(isbox[d&0xff])
}
