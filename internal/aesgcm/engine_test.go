package aesgcm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGHASHMatchesMulDefinition(t *testing.T) {
	// The windowed table multiply must equal the bit-serial reference.
	f := func(h, y [16]byte) bool {
		tbl := newMulTable(LoadEl(h[:]))
		got := tbl.mul(LoadEl(y[:]))
		want := LoadEl(y[:]).Mul(LoadEl(h[:]))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFieldElAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	randEl := func() FieldEl { return FieldEl{Hi: rng.Uint64(), Lo: rng.Uint64()} }
	for i := 0; i < 50; i++ {
		a, b, c := randEl(), randEl(), randEl()
		// Commutativity.
		if a.Mul(b) != b.Mul(a) {
			t.Fatal("mul not commutative")
		}
		// Distributivity over XOR.
		if a.Mul(b.Xor(c)) != a.Mul(b).Xor(a.Mul(c)) {
			t.Fatal("mul not distributive")
		}
		// Associativity.
		if a.Mul(b).Mul(c) != a.Mul(b.Mul(c)) {
			t.Fatal("mul not associative")
		}
	}
	// Multiplicative identity: the element "1" is x^0, MSB of byte 0.
	one := FieldEl{Hi: 1 << 63}
	a := randEl()
	if a.Mul(one) != a {
		t.Fatal("identity element wrong")
	}
	if !(FieldEl{}).IsZero() {
		t.Fatal("IsZero")
	}
}

func TestFieldElStoreLoad(t *testing.T) {
	f := func(b [16]byte) bool {
		var out [16]byte
		LoadEl(b[:]).Store(out[:])
		return out == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHPowersMatchSerialChain(t *testing.T) {
	h := make([]byte, 16)
	rand.New(rand.NewSource(4)).Read(h)
	hp := NewHPowers(h, 300)
	if hp.Count() != 300 {
		t.Fatalf("count = %d", hp.Count())
	}
	he := LoadEl(h)
	want := he
	for i := 1; i <= 300; i++ {
		if got := hp.Power(i); got != want {
			t.Fatalf("H^%d mismatch", i)
		}
		want = want.Mul(he)
	}
}

func TestHPowersSmallCounts(t *testing.T) {
	h := make([]byte, 16)
	h[0] = 0x42
	for _, n := range []int{0, 1, 2, 3, 4, 5} {
		hp := NewHPowers(h, n)
		if hp.Count() != n {
			t.Fatalf("n=%d: count=%d", n, hp.Count())
		}
		he := LoadEl(h)
		want := he
		for i := 1; i <= n; i++ {
			if hp.Power(i) != want {
				t.Fatalf("n=%d: H^%d mismatch", n, i)
			}
			want = want.Mul(he)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range power must panic")
		}
	}()
	NewHPowers(h, 2).Power(3)
}

func TestGHASHUpdateSplitInvariance(t *testing.T) {
	// GHASH over full blocks must not depend on Update call boundaries.
	h := make([]byte, 16)
	h[5] = 9
	data := make([]byte, 128)
	rand.New(rand.NewSource(5)).Read(data)
	g1 := NewGHASH(h)
	g1.Update(data)
	g2 := NewGHASH(h)
	g2.Update(data[:64])
	g2.Update(data[64:])
	a, b := make([]byte, 16), make([]byte, 16)
	if !bytes.Equal(g1.Sum(a), g2.Sum(b)) {
		t.Fatal("split Update changed GHASH")
	}
	g1.Reset()
	g1.Update(nil)
	var zero [16]byte
	if !bytes.Equal(g1.Sum(a), zero[:]) {
		t.Fatal("GHASH of nothing should be zero")
	}
}

func engineConfig(t *testing.T, key, iv []byte, aad []byte, length int) RecordConfig {
	t.Helper()
	g, err := NewGCM(key)
	if err != nil {
		t.Fatal(err)
	}
	eiv, err := g.EIV(iv)
	if err != nil {
		t.Fatal(err)
	}
	return RecordConfig{Key: key, IV: iv, H: g.H(), EIV: eiv, AAD: aad, Length: length}
}

// TestEngineMatchesSealInOrder: processing cachelines 0..n sequentially
// must produce exactly GCM.Seal's ciphertext and tag.
func TestEngineMatchesSealInOrder(t *testing.T) {
	key := []byte("0123456789abcdef")
	iv := []byte("abcdefghijkl")
	for _, size := range []int{1, 63, 64, 65, 100, 4096, 4096 + 17} {
		aad := []byte{0x17, 0x03, 0x03, 0x10, 0x00} // TLS 1.3 record header
		pt := make([]byte, size)
		rand.New(rand.NewSource(int64(size))).Read(pt)

		eng, err := NewCachelineEngine(Encrypt, engineConfig(t, key, iv, aad, size))
		if err != nil {
			t.Fatal(err)
		}
		ct := make([]byte, size)
		for off := 0; off < size; off += CachelineSize {
			end := off + CachelineSize
			if end > size {
				end = size
			}
			if err := eng.ProcessCacheline(ct[off:end], pt[off:end], off); err != nil {
				t.Fatalf("size %d off %d: %v", size, off, err)
			}
		}
		if !eng.Done() {
			t.Fatalf("size %d: engine not done", size)
		}
		tag, err := eng.Tag()
		if err != nil {
			t.Fatal(err)
		}

		g, _ := NewGCM(key)
		want, _ := g.Seal(nil, iv, pt, aad)
		if !bytes.Equal(ct, want[:size]) {
			t.Fatalf("size %d: ciphertext mismatch", size)
		}
		if !bytes.Equal(tag, want[size:]) {
			t.Fatalf("size %d: tag mismatch: %x vs %x", size, tag, want[size:])
		}
	}
}

// TestEngineOutOfOrder: the central §V-A property — cachelines processed
// in any order yield the identical record and tag.
func TestEngineOutOfOrder(t *testing.T) {
	key := []byte("0123456789abcdefghijklmnopqrstuv") // AES-256
	iv := []byte("abcdefghijkl")
	size := 4096 + 33
	pt := make([]byte, size)
	rng := rand.New(rand.NewSource(11))
	rng.Read(pt)
	aad := []byte("record-header")

	g, _ := NewGCM(key)
	want, _ := g.Seal(nil, iv, pt, aad)

	for trial := 0; trial < 5; trial++ {
		eng, err := NewCachelineEngine(Encrypt, engineConfig(t, key, iv, aad, size))
		if err != nil {
			t.Fatal(err)
		}
		nCL := (size + CachelineSize - 1) / CachelineSize
		order := rng.Perm(nCL)
		ct := make([]byte, size)
		for _, cl := range order {
			off := cl * CachelineSize
			end := off + CachelineSize
			if end > size {
				end = size
			}
			if _, err := eng.Tag(); err == nil && !eng.Done() {
				t.Fatal("tag available before completion")
			}
			if err := eng.ProcessCacheline(ct[off:end], pt[off:end], off); err != nil {
				t.Fatal(err)
			}
		}
		tag, err := eng.Tag()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ct, want[:size]) || !bytes.Equal(tag, want[size:]) {
			t.Fatalf("trial %d: out-of-order result differs from in-order", trial)
		}
	}
}

func TestEngineDecryptRoundTripAndVerify(t *testing.T) {
	key := []byte("0123456789abcdef")
	iv := []byte("abcdefghijkl")
	size := 1000
	pt := make([]byte, size)
	rand.New(rand.NewSource(13)).Read(pt)
	g, _ := NewGCM(key)
	sealed, _ := g.Seal(nil, iv, pt, nil)
	ct, tag := sealed[:size], sealed[size:]

	eng, err := NewCachelineEngine(Decrypt, engineConfig(t, key, iv, nil, size))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, size)
	// Decrypt back-to-front to stress out-of-order on the RX path.
	for off := ((size - 1) / CachelineSize) * CachelineSize; off >= 0; off -= CachelineSize {
		end := off + CachelineSize
		if end > size {
			end = size
		}
		if err := eng.ProcessCacheline(out[off:end], ct[off:end], off); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out, pt) {
		t.Fatal("decrypt mismatch")
	}
	if err := eng.VerifyTag(tag); err != nil {
		t.Fatalf("tag verify failed: %v", err)
	}
	bad := append([]byte(nil), tag...)
	bad[0] ^= 1
	if err := eng.VerifyTag(bad); err != ErrAuth {
		t.Fatalf("bad tag: err = %v, want ErrAuth", err)
	}
}

func TestEngineRejectsBadInput(t *testing.T) {
	key := []byte("0123456789abcdef")
	iv := []byte("abcdefghijkl")
	cfg := engineConfig(t, key, iv, nil, 128)
	eng, _ := NewCachelineEngine(Encrypt, cfg)
	buf := make([]byte, 64)

	if err := eng.ProcessCacheline(buf, buf, 32); err == nil {
		t.Error("unaligned offset accepted")
	}
	if err := eng.ProcessCacheline(buf, buf, 192); err == nil {
		t.Error("offset past record accepted")
	}
	if err := eng.ProcessCacheline(buf[:10], buf, 0); err == nil {
		t.Error("short dst accepted")
	}
	if err := eng.ProcessCacheline(buf, buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.ProcessCacheline(buf, buf, 0); err == nil {
		t.Error("double processing accepted (S7 bookkeeping)")
	}
	if eng.Remaining() != 1 {
		t.Errorf("remaining = %d, want 1", eng.Remaining())
	}

	// Config validation.
	bad := cfg
	bad.Length = -1
	if _, err := NewCachelineEngine(Encrypt, bad); err == nil {
		t.Error("negative length accepted")
	}
	bad = cfg
	bad.IV = []byte("short")
	if _, err := NewCachelineEngine(Encrypt, bad); err == nil {
		t.Error("short IV accepted")
	}
	bad = cfg
	bad.H = nil
	if _, err := NewCachelineEngine(Encrypt, bad); err == nil {
		t.Error("missing H accepted")
	}
	bad = cfg
	bad.Key = []byte("tiny")
	if _, err := NewCachelineEngine(Encrypt, bad); err == nil {
		t.Error("bad key accepted")
	}
}

func TestEngineZeroLengthRecord(t *testing.T) {
	cfg := engineConfig(t, []byte("0123456789abcdef"), []byte("abcdefghijkl"), nil, 0)
	eng, err := NewCachelineEngine(Encrypt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Done() {
		t.Fatal("zero-length record should be immediately done")
	}
	tag, err := eng.Tag()
	if err != nil {
		t.Fatal(err)
	}
	g, _ := NewGCM([]byte("0123456789abcdef"))
	want, _ := g.Seal(nil, []byte("abcdefghijkl"), nil, nil)
	if !bytes.Equal(tag, want) {
		t.Fatal("zero-length tag mismatch")
	}
}

func TestRecordConfigBytesWithinConfigPage(t *testing.T) {
	// The paper allocates 1KB of Config Memory context per source page;
	// the engine's context layout must fit.
	cfg := RecordConfig{
		Key: make([]byte, 32), IV: make([]byte, 12),
		H: make([]byte, 16), EIV: make([]byte, 16),
		AAD: make([]byte, 13), Length: 4096,
	}
	if n := cfg.ConfigBytes(); n > 1024 {
		t.Fatalf("config footprint %dB exceeds the paper's 1KB context", n)
	}
}

func BenchmarkEngineCacheline(b *testing.B) {
	key := []byte("0123456789abcdef")
	iv := []byte("abcdefghijkl")
	g, _ := NewGCM(key)
	eiv, _ := g.EIV(iv)
	const recordLen = 1 << 20
	cfg := RecordConfig{Key: key, IV: iv, H: g.H(), EIV: eiv, Length: recordLen}
	eng, _ := NewCachelineEngine(Encrypt, cfg)
	src := make([]byte, CachelineSize)
	dst := make([]byte, CachelineSize)
	b.SetBytes(CachelineSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (i % (recordLen / CachelineSize)) * CachelineSize
		eng.processed[off/CachelineSize] = false // reuse engine across iterations
		if err := eng.ProcessCacheline(dst, src, off); err != nil {
			b.Fatal(err)
		}
		eng.doneCLs--
	}
}
