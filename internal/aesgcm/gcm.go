package aesgcm

import (
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by GCM operations.
var (
	ErrAuth   = errors.New("aesgcm: message authentication failed")
	ErrIVSize = errors.New("aesgcm: unsupported IV size")
)

// TagSize is the GCM authentication tag length used throughout (the TLS
// AEAD tag size).
const TagSize = 16

// StandardIVSize is the recommended 96-bit IV size of SP 800-38D, the
// only size TLS uses and the only one this implementation supports.
const StandardIVSize = 12

// GCM provides authenticated encryption using AES in Galois/Counter
// Mode. It is the software reference the SmartDIMM TLS DSA is checked
// against, and also the "CPU baseline" codec the offload backends use.
type GCM struct {
	cipher *Cipher
	h      [BlockSize]byte // hash subkey H = E_K(0^128)
	table  *mulTable8      // GHASH table, built once per key
}

// NewGCM wraps an AES key (16/24/32 bytes) in GCM mode.
func NewGCM(key []byte) (*GCM, error) {
	c, err := NewCipher(key)
	if err != nil {
		return nil, err
	}
	g := &GCM{cipher: c}
	var zero [BlockSize]byte
	c.Encrypt(g.h[:], zero[:])
	g.table = newMulTable8(LoadEl(g.h[:]))
	return g, nil
}

// H returns the hash subkey E_K(0^128). In the paper's split, the CPU
// computes H and writes it to SmartDIMM's Config Memory.
func (g *GCM) H() []byte {
	out := make([]byte, BlockSize)
	copy(out, g.h[:])
	return out
}

// EIV returns E_K(J0), the encrypted initial counter block for the given
// 96-bit IV — the "EIV" the CPU supplies to the DSA so the final tag can
// be produced entirely near memory (§V-A, Fig. 7).
func (g *GCM) EIV(iv []byte) ([]byte, error) {
	j0, err := counterBlock(iv, 1)
	if err != nil {
		return nil, err
	}
	out := make([]byte, BlockSize)
	g.cipher.Encrypt(out, j0[:])
	return out, nil
}

// counterBlock builds the CTR block for a 96-bit IV with the given
// 32-bit counter value.
func counterBlock(iv []byte, ctr uint32) ([BlockSize]byte, error) {
	var b [BlockSize]byte
	if len(iv) != StandardIVSize {
		return b, fmt.Errorf("%w: %d bytes", ErrIVSize, len(iv))
	}
	copy(b[:StandardIVSize], iv)
	binary.BigEndian.PutUint32(b[StandardIVSize:], ctr)
	return b, nil
}

// KeystreamAt fills dst with the CTR keystream bytes covering message
// offsets [offset, offset+len(dst)). Offset 0 is the first plaintext
// byte (counter value 2; counter 1 is reserved for the tag per the GCM
// spec). Random access is what makes the ULP incrementally computable
// (Observation 4): any 64-byte cacheline can be processed independently.
func (g *GCM) KeystreamAt(dst []byte, iv []byte, offset int) error {
	if len(iv) != StandardIVSize {
		return fmt.Errorf("%w: %d bytes", ErrIVSize, len(iv))
	}
	if offset < 0 {
		return errors.New("aesgcm: negative keystream offset")
	}
	// Build the counter block once and only bump the 32-bit counter per
	// block: no per-block IV copy, length check, or slice allocation.
	var cb, ks [BlockSize]byte
	copy(cb[:StandardIVSize], iv)
	blockIdx := offset / BlockSize
	within := offset % BlockSize
	written := 0
	for written < len(dst) {
		binary.BigEndian.PutUint32(cb[StandardIVSize:], uint32(blockIdx)+2)
		g.cipher.Encrypt(ks[:], cb[:])
		written += copy(dst[written:], ks[within:])
		within = 0
		blockIdx++
	}
	return nil
}

// Seal encrypts plaintext with the given 96-bit IV and additional data,
// returning ciphertext||tag appended to dst.
func (g *GCM) Seal(dst, iv, plaintext, aad []byte) ([]byte, error) {
	if len(iv) != StandardIVSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrIVSize, len(iv))
	}
	ret, out := sliceForAppend(dst, len(plaintext)+TagSize)
	ct := out[:len(plaintext)]
	if err := g.KeystreamAt(ct, iv, 0); err != nil {
		return nil, err
	}
	for i := range plaintext {
		ct[i] ^= plaintext[i]
	}
	tag, err := g.computeTag(iv, ct, aad)
	if err != nil {
		return nil, err
	}
	copy(out[len(plaintext):], tag)
	return ret, nil
}

// Open authenticates and decrypts ciphertext||tag, returning the
// plaintext appended to dst, or ErrAuth if the tag does not verify.
func (g *GCM) Open(dst, iv, sealed, aad []byte) ([]byte, error) {
	if len(sealed) < TagSize {
		return nil, ErrAuth
	}
	ct := sealed[:len(sealed)-TagSize]
	tag := sealed[len(sealed)-TagSize:]
	want, err := g.computeTag(iv, ct, aad)
	if err != nil {
		return nil, err
	}
	if subtle.ConstantTimeCompare(tag, want) != 1 {
		return nil, ErrAuth
	}
	ret, out := sliceForAppend(dst, len(ct))
	if err := g.KeystreamAt(out, iv, 0); err != nil {
		return nil, err
	}
	for i := range ct {
		out[i] ^= ct[i]
	}
	return ret, nil
}

// computeTag runs GHASH over aad||ct||lengths and encrypts with E_K(J0),
// reusing the per-key table instead of rebuilding it per record.
func (g *GCM) computeTag(iv, ct, aad []byte) ([]byte, error) {
	gh := GHASH{table: g.table}
	gh.Update(aad)
	gh.Update(ct)
	gh.UpdateLengths(len(aad), len(ct))
	var s [BlockSize]byte
	gh.Sum(s[:])
	eiv, err := g.EIV(iv)
	if err != nil {
		return nil, err
	}
	for i := range s {
		s[i] ^= eiv[i]
	}
	return s[:], nil
}

// Overhead returns the ciphertext expansion of Seal.
func (g *GCM) Overhead() int { return TagSize }

// sliceForAppend extends in by n bytes, reusing capacity when possible,
// following the pattern used by the standard library's AEADs.
func sliceForAppend(in []byte, n int) (head, tail []byte) {
	if total := len(in) + n; cap(in) >= total {
		head = in[:total]
	} else {
		head = make([]byte, total)
		copy(head, in)
	}
	tail = head[len(in):]
	return
}
