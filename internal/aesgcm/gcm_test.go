package aesgcm

import (
	"bytes"
	stdaes "crypto/aes"
	"crypto/cipher"
	"math/rand"
	"testing"
)

// NIST SP 800-38D style known-answer vectors (from the GCM spec test set).
func TestGCMKnownAnswers(t *testing.T) {
	cases := []struct {
		name                  string
		key, iv, pt, aad, out string
	}{
		{
			name: "zero key/zero pt (test case 2)",
			key:  "00000000000000000000000000000000",
			iv:   "000000000000000000000000",
			pt:   "00000000000000000000000000000000",
			out:  "0388dace60b6a392f328c2b971b2fe78" + "ab6e47d42cec13bdf53a67b21257bddf",
		},
		{
			name: "test case 3",
			key:  "feffe9928665731c6d6a8f9467308308",
			iv:   "cafebabefacedbaddecaf888",
			pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72" +
				"1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
			out: "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e" +
				"21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985" +
				"4d5c2af327cd64a62cf35abd2ba6fab4",
		},
		{
			name: "test case 4 (with AAD, short final block)",
			key:  "feffe9928665731c6d6a8f9467308308",
			iv:   "cafebabefacedbaddecaf888",
			pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72" +
				"1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
			aad: "feedfacedeadbeeffeedfacedeadbeefabaddad2",
			out: "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e" +
				"21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091" +
				"5bc94fbc3221a5db94fae95ae7121a47",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, err := NewGCM(unhex(t, c.key))
			if err != nil {
				t.Fatal(err)
			}
			var aad []byte
			if c.aad != "" {
				aad = unhex(t, c.aad)
			}
			got, err := g.Seal(nil, unhex(t, c.iv), unhex(t, c.pt), aad)
			if err != nil {
				t.Fatal(err)
			}
			if want := unhex(t, c.out); !bytes.Equal(got, want) {
				t.Fatalf("seal = %x\nwant  %x", got, want)
			}
			back, err := g.Open(nil, unhex(t, c.iv), got, aad)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, unhex(t, c.pt)) {
				t.Fatal("open did not recover plaintext")
			}
		})
	}
}

func TestGCMMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		keyLen := []int{16, 24, 32}[trial%3]
		key := make([]byte, keyLen)
		rng.Read(key)
		iv := make([]byte, StandardIVSize)
		rng.Read(iv)
		pt := make([]byte, rng.Intn(500))
		rng.Read(pt)
		aad := make([]byte, rng.Intn(40))
		rng.Read(aad)

		ours, err := NewGCM(key)
		if err != nil {
			t.Fatal(err)
		}
		blk, _ := stdaes.NewCipher(key)
		ref, _ := cipher.NewGCM(blk)

		a, err := ours.Seal(nil, iv, pt, aad)
		if err != nil {
			t.Fatal(err)
		}
		b := ref.Seal(nil, iv, pt, aad)
		if !bytes.Equal(a, b) {
			t.Fatalf("trial %d: seal mismatch\nours %x\nref  %x", trial, a, b)
		}
		// Our Open accepts stdlib output and vice versa.
		if _, err := ours.Open(nil, iv, b, aad); err != nil {
			t.Fatalf("trial %d: open of stdlib output failed: %v", trial, err)
		}
		if _, err := ref.Open(nil, iv, a, aad); err != nil {
			t.Fatalf("trial %d: stdlib open of our output failed: %v", trial, err)
		}
	}
}

func TestGCMAuthFailures(t *testing.T) {
	g, _ := NewGCM(make([]byte, 16))
	iv := make([]byte, 12)
	sealed, _ := g.Seal(nil, iv, []byte("attack at dawn"), []byte("hdr"))

	flip := append([]byte(nil), sealed...)
	flip[3] ^= 0x01
	if _, err := g.Open(nil, iv, flip, []byte("hdr")); err != ErrAuth {
		t.Fatalf("tampered ciphertext: err = %v, want ErrAuth", err)
	}
	tag := append([]byte(nil), sealed...)
	tag[len(tag)-1] ^= 0x80
	if _, err := g.Open(nil, iv, tag, []byte("hdr")); err != ErrAuth {
		t.Fatalf("tampered tag: err = %v, want ErrAuth", err)
	}
	if _, err := g.Open(nil, iv, sealed, []byte("other")); err != ErrAuth {
		t.Fatalf("wrong AAD: err = %v, want ErrAuth", err)
	}
	if _, err := g.Open(nil, iv, sealed[:8], nil); err != ErrAuth {
		t.Fatalf("truncated input: err = %v, want ErrAuth", err)
	}
}

func TestGCMIVSizeRejected(t *testing.T) {
	g, _ := NewGCM(make([]byte, 16))
	if _, err := g.Seal(nil, make([]byte, 8), []byte("x"), nil); err == nil {
		t.Fatal("8-byte IV accepted")
	}
	if _, err := g.EIV(make([]byte, 16)); err == nil {
		t.Fatal("16-byte IV accepted by EIV")
	}
}

func TestKeystreamRandomAccess(t *testing.T) {
	// Observation 4: any byte range of the keystream can be generated
	// independently; stitching arbitrary ranges equals the sequential
	// stream.
	g, _ := NewGCM([]byte("0123456789abcdef"))
	iv := []byte("nonce-123456")[:12]
	full := make([]byte, 300)
	if err := g.KeystreamAt(full, iv, 0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		off := rng.Intn(280)
		n := 1 + rng.Intn(300-off-1)
		part := make([]byte, n)
		if err := g.KeystreamAt(part, iv, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(part, full[off:off+n]) {
			t.Fatalf("keystream at [%d,%d) differs from sequential", off, off+n)
		}
	}
	if err := g.KeystreamAt(make([]byte, 4), iv, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestEIVMatchesTagRelation(t *testing.T) {
	// Seal with empty plaintext and empty AAD: tag = GHASH(lengths) ^ EIV
	// where GHASH of the all-zero lengths block is 0, so tag == EIV.
	g, _ := NewGCM(make([]byte, 16))
	iv := make([]byte, 12)
	sealed, _ := g.Seal(nil, iv, nil, nil)
	eiv, _ := g.EIV(iv)
	if !bytes.Equal(sealed, eiv) {
		t.Fatalf("empty-message tag %x != EIV %x", sealed, eiv)
	}
}

func TestGCMSealAppends(t *testing.T) {
	g, _ := NewGCM(make([]byte, 16))
	iv := make([]byte, 12)
	prefix := []byte("prefix")
	out, _ := g.Seal(prefix, iv, []byte("data"), nil)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("Seal must append to dst")
	}
	if len(out) != len(prefix)+4+TagSize {
		t.Fatalf("len = %d", len(out))
	}
	if g.Overhead() != TagSize {
		t.Fatal("overhead")
	}
}

func BenchmarkGCMSeal4KB(b *testing.B) {
	g, _ := NewGCM(make([]byte, 16))
	iv := make([]byte, 12)
	pt := make([]byte, 4096)
	dst := make([]byte, 0, 4096+TagSize)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		g.Seal(dst[:0], iv, pt, nil)
	}
}
