package aesgcm

import (
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
)

// CachelineSize is the unit the DSA processes: one DDR burst, four AES
// blocks.
const CachelineSize = 64

// Direction selects encryption or decryption for a record engine.
type Direction int

// Engine directions.
const (
	Encrypt Direction = iota
	Decrypt
)

// RecordConfig is the per-source-page context the CPU writes into
// SmartDIMM's Config Memory when registering a TLS offload (§V-A): the
// AES key (for the CTR pipeline), the record IV, the CPU-computed hash
// subkey H and encrypted initial counter EIV, the record's AAD, and its
// total payload length. The paper sizes this context at 1KB per source
// page, dominated by the precomputed powers of H.
type RecordConfig struct {
	Key    []byte
	IV     []byte // 96-bit TLS record nonce
	H      []byte // E_K(0^128), computed on the CPU
	EIV    []byte // E_K(J0), computed on the CPU
	AAD    []byte // TLS record header (may be empty)
	Length int    // plaintext/ciphertext length in bytes
}

// ConfigBytes returns the approximate Config Memory footprint of this
// record's context as laid out in hardware: key + IV + EIV + AAD plus one
// precomputed H power per ciphertext block. The paper quotes ~1KB per
// 4KB source page, which this layout matches (4KB/16B = 256 blocks... the
// DSA stores powers for the blocks of one page: 256 x 16B = 4KB would
// exceed it, so the hardware keeps powers in strides of 4 and multiplies
// lanes forward, storing only the 4 lane heads plus H^4 — the same
// scheme NewHPowers models).
func (c *RecordConfig) ConfigBytes() int {
	return len(c.Key) + len(c.IV) + len(c.EIV) + len(c.AAD) + (Stride+1)*BlockSize + 8
}

// CachelineEngine is the functional model of the TLS DSA datapath of
// Fig. 7. It (de/en)crypts 64-byte cachelines of a single TLS record in
// any order, folding each cacheline's GHASH contribution into a partial
// tag using precomputed powers of H, exactly as the hardware does when
// rdCAS commands arrive out of order. The engine is stateless across
// records: a new engine is built per registered source buffer.
type CachelineEngine struct {
	dir       Direction
	cipher    *Cipher
	iv        []byte
	eiv       [BlockSize]byte
	powers    *HPowers
	length    int
	ctBlocks  int
	aadBlocks int
	totalCLs  int
	doneCLs   int
	processed []bool
	partial   FieldEl // running XOR of per-block GHASH contributions
}

// NewCachelineEngine validates the config and precomputes the H powers
// (the GF multiplier starts "as soon as the sbuf is registered").
func NewCachelineEngine(dir Direction, cfg RecordConfig) (*CachelineEngine, error) {
	if cfg.Length < 0 {
		return nil, errors.New("aesgcm: negative record length")
	}
	if len(cfg.IV) != StandardIVSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrIVSize, len(cfg.IV))
	}
	if len(cfg.H) != BlockSize || len(cfg.EIV) != BlockSize {
		return nil, errors.New("aesgcm: H and EIV must be 16 bytes")
	}
	c, err := NewCipher(cfg.Key)
	if err != nil {
		return nil, err
	}
	ctBlocks := (cfg.Length + BlockSize - 1) / BlockSize
	aadBlocks := (len(cfg.AAD) + BlockSize - 1) / BlockSize
	// Exponents run up to aadBlocks+ctBlocks+1 (the +1 is the lengths
	// block, which always multiplies last and therefore carries H^1;
	// earlier blocks carry correspondingly higher powers).
	e := &CachelineEngine{
		dir:       dir,
		cipher:    c,
		iv:        append([]byte(nil), cfg.IV...),
		powers:    NewHPowers(cfg.H, aadBlocks+ctBlocks+1),
		length:    cfg.Length,
		ctBlocks:  ctBlocks,
		totalCLs:  (cfg.Length + CachelineSize - 1) / CachelineSize,
		processed: make([]bool, (cfg.Length+CachelineSize-1)/CachelineSize),
	}
	copy(e.eiv[:], cfg.EIV)

	// Fold the AAD contribution immediately: the CPU supplies the AAD in
	// the config write, so its GHASH terms are known at registration.
	totalBlocks := aadBlocks + ctBlocks + 1
	aad := cfg.AAD
	for j := 0; j < aadBlocks; j++ {
		var blk [BlockSize]byte
		copy(blk[:], aad[j*BlockSize:])
		exp := totalBlocks - j // j is 0-based: first AAD block has the highest power
		e.partial = e.partial.Xor(LoadEl(blk[:]).Mul(e.powers.Power(exp)))
	}
	// Fold the lengths block (exponent 1) — also known at registration.
	var lenBlk [BlockSize]byte
	binary.BigEndian.PutUint64(lenBlk[0:8], uint64(len(cfg.AAD))*8)
	binary.BigEndian.PutUint64(lenBlk[8:16], uint64(cfg.Length)*8)
	e.aadBlocks = aadBlocks
	e.partial = e.partial.Xor(LoadEl(lenBlk[:]).Mul(e.powers.Power(1)))
	return e, nil
}

// Remaining returns how many cachelines have not yet been processed.
func (e *CachelineEngine) Remaining() int { return e.totalCLs - e.doneCLs }

// Done reports whether the full record has been transformed and the tag
// is final.
func (e *CachelineEngine) Done() bool { return e.doneCLs == e.totalCLs }

// ProcessCacheline transforms one 64-byte-aligned cacheline of the
// record. offset is the byte offset within the record and must be a
// multiple of 64; src holds the input bytes (plaintext when encrypting,
// ciphertext when decrypting) and dst receives the output. The final
// cacheline of a record may be short. Cachelines may arrive in any
// order; processing the same cacheline twice is rejected, modelling the
// arbiter's "pending computation" bookkeeping (Fig. 6, S6/S7).
func (e *CachelineEngine) ProcessCacheline(dst, src []byte, offset int) error {
	if offset%CachelineSize != 0 {
		return fmt.Errorf("aesgcm: offset %d not cacheline aligned", offset)
	}
	cl := offset / CachelineSize
	if cl < 0 || cl >= e.totalCLs {
		return fmt.Errorf("aesgcm: offset %d outside record of %d bytes", offset, e.length)
	}
	want := CachelineSize
	if offset+want > e.length {
		want = e.length - offset
	}
	if len(src) < want || len(dst) < want {
		return fmt.Errorf("aesgcm: cacheline at %d needs %d bytes, have src=%d dst=%d",
			offset, want, len(src), len(dst))
	}
	if e.processed[cl] {
		return fmt.Errorf("aesgcm: cacheline %d already processed", cl)
	}

	// CTR transform: XOR with the randomly accessed keystream.
	var ks [CachelineSize]byte
	if err := e.keystreamAt(ks[:want], offset); err != nil {
		return err
	}
	// GHASH folds ciphertext: dst when encrypting, src when decrypting.
	var ctBytes []byte
	if e.dir == Encrypt {
		for i := 0; i < want; i++ {
			dst[i] = src[i] ^ ks[i]
		}
		ctBytes = dst[:want]
	} else {
		// Snapshot the ciphertext on the stack: dst may alias src.
		var ct [CachelineSize]byte
		copy(ct[:want], src)
		for i := 0; i < want; i++ {
			dst[i] = src[i] ^ ks[i]
		}
		ctBytes = ct[:want]
	}
	e.foldCiphertext(ctBytes, offset)
	e.processed[cl] = true
	e.doneCLs++
	return nil
}

// keystreamAt produces CTR keystream for record offsets
// [offset, offset+len(dst)), streaming the counter block instead of
// rebuilding it per AES block.
func (e *CachelineEngine) keystreamAt(dst []byte, offset int) error {
	var cb, ks [BlockSize]byte
	copy(cb[:StandardIVSize], e.iv)
	blockIdx := offset / BlockSize
	within := offset % BlockSize
	written := 0
	for written < len(dst) {
		binary.BigEndian.PutUint32(cb[StandardIVSize:], uint32(blockIdx)+2)
		e.cipher.Encrypt(ks[:], cb[:])
		written += copy(dst[written:], ks[within:])
		within = 0
		blockIdx++
	}
	return nil
}

// foldCiphertext XOR-accumulates the GHASH contributions of the
// ciphertext blocks in this cacheline. Block i (1-based over the
// record's ciphertext blocks) carries exponent
// (aadBlocks + ctBlocks + 1) - (aadBlocks + i) + 1 = ctBlocks - i + 2.
func (e *CachelineEngine) foldCiphertext(ct []byte, offset int) {
	totalBlocks := e.aadBlocks + e.ctBlocks + 1
	for off := 0; off < len(ct); off += BlockSize {
		var blk [BlockSize]byte
		copy(blk[:], ct[off:])
		blockIdx := (offset + off) / BlockSize // 0-based ct block index
		pos := e.aadBlocks + blockIdx + 1      // 1-based position in GHASH sequence
		exp := totalBlocks - pos + 1
		e.partial = e.partial.Xor(LoadEl(blk[:]).Mul(e.powers.Power(exp)))
	}
}

// Tag returns the final authentication tag. It errors until every
// cacheline has been processed — in hardware the tag lands in the
// record trailer "after the entire sbuf is encrypted".
func (e *CachelineEngine) Tag() ([]byte, error) {
	if !e.Done() {
		return nil, fmt.Errorf("aesgcm: tag not final, %d cachelines pending", e.Remaining())
	}
	var s [BlockSize]byte
	e.partial.Store(s[:])
	for i := range s {
		s[i] ^= e.eiv[i]
	}
	return s[:], nil
}

// VerifyTag compares the engine's final tag with the received one in
// constant time. Used on the decrypt path.
func (e *CachelineEngine) VerifyTag(tag []byte) error {
	want, err := e.Tag()
	if err != nil {
		return err
	}
	if subtle.ConstantTimeCompare(want, tag) != 1 {
		return ErrAuth
	}
	return nil
}
