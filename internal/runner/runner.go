// Package runner fans independent simulation runs across a bounded pool
// of goroutines. Every simulation in this repository is a closed
// deterministic system (its own sim.Engine, seeded RNG, and stat
// counters), so runs never share mutable state and a sweep over
// parameter points is embarrassingly parallel. The pool exploits that:
// results are delivered in input order regardless of completion order,
// so a parallel sweep is byte-identical to a serial one — the property
// the determinism regression test in internal/experiments pins down.
package runner

import (
	"context"
	"runtime"
	"sync"
)

// Pool bounds how many runs execute concurrently. The zero number of
// workers (or a nil *Pool) selects serial in-caller execution, which is
// also the fallback the experiment code uses when no -parallel flag is
// given.
type Pool struct {
	workers int
}

// New creates a pool with the given concurrency. workers <= 0 selects
// GOMAXPROCS, the number of CPUs the Go runtime will actually schedule.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's concurrency bound. A nil pool reports 1.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Map runs fn over every item and returns the results in input order.
//
// A nil pool (or one worker) runs serially in the calling goroutine,
// stopping at the first error. Otherwise up to p.Workers() goroutines
// run concurrently; the first error cancels the derived context handed
// to the remaining calls and is returned after all in-flight calls
// drain. Items whose fn was never started or returned an error hold the
// zero value in the result slice.
func Map[T, R any](ctx context.Context, p *Pool, items []T, fn func(ctx context.Context, item T, idx int) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, ctx.Err()
	}
	if p.Workers() <= 1 || len(items) == 1 {
		for i, it := range items {
			if err := ctx.Err(); err != nil {
				return results, err
			}
			r, err := fn(ctx, it, i)
			if err != nil {
				return results, err
			}
			results[i] = r
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	sem := make(chan struct{}, p.Workers())
	for i := range items {
		if ctx.Err() != nil {
			break // first error or caller cancellation: stop admitting work
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(idx int) {
			defer func() {
				<-sem
				wg.Done()
			}()
			r, err := fn(ctx, items[idx], idx)
			if err != nil {
				errOnce.Do(func() {
					firstErr = err
					cancel()
				})
				return
			}
			results[idx] = r
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return results, firstErr
	}
	return results, ctx.Err()
}
