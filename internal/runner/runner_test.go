package runner

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapInputOrder checks results land at their item's index even when
// completion order is scrambled.
func TestMapInputOrder(t *testing.T) {
	items := make([]int, 32)
	for i := range items {
		items[i] = i
	}
	p := New(8)
	got, err := Map(context.Background(), p, items, func(_ context.Context, it, idx int) (int, error) {
		// Later items finish first.
		time.Sleep(time.Duration(len(items)-idx) * 100 * time.Microsecond)
		return it * it, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, r, i*i)
		}
	}
}

// TestMapSerialNilPool checks a nil pool runs in the calling goroutine,
// strictly in order.
func TestMapSerialNilPool(t *testing.T) {
	var order []int
	got, err := Map(context.Background(), nil, []int{10, 20, 30}, func(_ context.Context, it, idx int) (int, error) {
		order = append(order, idx) // no locking: must be the caller's goroutine
		return it + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 11 || got[1] != 21 || got[2] != 31 {
		t.Fatalf("results = %v", got)
	}
	for i, o := range order {
		if o != i {
			t.Fatalf("serial execution order = %v", order)
		}
	}
}

// TestMapFirstError checks the first error is returned and cancels the
// context seen by other calls.
func TestMapFirstError(t *testing.T) {
	boom := errors.New("boom")
	var cancelled atomic.Int32
	items := make([]int, 64)
	_, err := Map(context.Background(), New(4), items, func(ctx context.Context, _ int, idx int) (int, error) {
		if idx == 5 {
			return 0, boom
		}
		select {
		case <-ctx.Done():
			cancelled.Add(1)
		case <-time.After(20 * time.Millisecond):
		}
		return idx, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestMapSerialError checks serial mode stops at the first failure.
func TestMapSerialError(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	_, err := Map(context.Background(), nil, []int{0, 1, 2, 3}, func(_ context.Context, _, idx int) (int, error) {
		ran++
		if idx == 1 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if ran != 2 {
		t.Fatalf("ran %d items after error, want 2", ran)
	}
}

// TestMapContextCancel checks caller cancellation surfaces as the error.
func TestMapContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 128)
	done := make(chan struct{})
	var started atomic.Int32
	go func() {
		defer close(done)
		_, err := Map(ctx, New(2), items, func(ctx context.Context, _, idx int) (int, error) {
			started.Add(1)
			select {
			case <-ctx.Done():
			case <-time.After(50 * time.Millisecond):
			}
			return idx, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	}()
	for started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	if int(started.Load()) == len(items) {
		t.Fatalf("cancellation admitted all %d items", len(items))
	}
}

// TestMapConcurrencyBound checks no more than Workers() calls run at
// once.
func TestMapConcurrencyBound(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	items := make([]int, 24)
	_, err := Map(context.Background(), New(workers), items, func(_ context.Context, _, idx int) (int, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return idx, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestNewDefaults checks worker defaulting.
func TestNewDefaults(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) must default to at least one worker")
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("Workers() = %d, want 7", got)
	}
	var nilPool *Pool
	if got := nilPool.Workers(); got != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", got)
	}
}

// TestMapEmpty checks the empty-input fast path.
func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), New(4), nil, func(_ context.Context, it, _ int) (int, error) {
		return it, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}
