package dram

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMapperRoundTrip(t *testing.T) {
	for _, geo := range []Geometry{SmallGeometry(), DDR4Geometry16GB()} {
		m, err := NewMapper(geo)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 2000; i++ {
			phys := (rng.Uint64() % geo.CapacityBytes()) &^ 63
			cmd, err := m.Decode(phys)
			if err != nil {
				t.Fatal(err)
			}
			back := m.Encode(cmd.Rank, cmd.BG, cmd.BA, cmd.Row, cmd.Col)
			if back != phys {
				t.Fatalf("round trip %#x -> %+v -> %#x", phys, cmd, back)
			}
		}
	}
}

func TestMapperDecodeBounds(t *testing.T) {
	m, _ := NewMapper(SmallGeometry())
	if _, err := m.Decode(SmallGeometry().CapacityBytes()); err == nil {
		t.Fatal("out-of-capacity address accepted")
	}
	cmd, err := m.Decode(0)
	if err != nil || cmd.Row != 0 || cmd.Col != 0 || cmd.BG != 0 {
		t.Fatalf("decode(0) = %+v, %v", cmd, err)
	}
}

func TestMapperConsecutiveCachelinesSpreadColumnsFirst(t *testing.T) {
	// Open-page friendliness: consecutive cachelines walk columns of the
	// same row before switching banks.
	m, _ := NewMapper(SmallGeometry())
	a, _ := m.Decode(0)
	b, _ := m.Decode(64)
	if a.Row != b.Row || a.BG != b.BG || a.BA != b.BA || b.Col != a.Col+1 {
		t.Fatalf("cacheline+1 should stay in row: %+v vs %+v", a, b)
	}
}

func TestMapperRejectsNonPowerOfTwo(t *testing.T) {
	bad := Geometry{Ranks: 3, BankGroups: 4, BanksPerBG: 4, Rows: 1024, ColsPerRow: 128}
	if _, err := NewMapper(bad); err == nil {
		t.Fatal("non-power-of-two geometry accepted")
	}
}

func TestBankIndexDense(t *testing.T) {
	geo := SmallGeometry()
	m, _ := NewMapper(geo)
	seen := map[int]bool{}
	for r := 0; r < geo.Ranks; r++ {
		for bg := 0; bg < geo.BankGroups; bg++ {
			for ba := 0; ba < geo.BanksPerBG; ba++ {
				idx := m.BankIndex(r, bg, ba)
				if idx < 0 || idx >= geo.TotalBanks() || seen[idx] {
					t.Fatalf("bank index %d invalid or duplicate", idx)
				}
				seen[idx] = true
			}
		}
	}
}

func TestChipsProtocolRules(t *testing.T) {
	ch, err := NewChips(SmallGeometry())
	if err != nil {
		t.Fatal(err)
	}
	cmd := Command{Kind: CmdRd, Rank: 0, BG: 1, BA: 2, Row: 5, Col: 3}
	buf := make([]byte, CachelineSize)

	// CAS to precharged bank fails.
	if err := ch.Read(cmd, buf); err == nil {
		t.Fatal("read from precharged bank accepted")
	}
	if err := ch.Activate(0, 1, 2, 5); err != nil {
		t.Fatal(err)
	}
	// Double activate fails.
	if err := ch.Activate(0, 1, 2, 6); err == nil {
		t.Fatal("double activate accepted")
	}
	// Wrong-row CAS fails.
	wrong := cmd
	wrong.Row = 6
	if err := ch.Read(wrong, buf); err == nil {
		t.Fatal("CAS to non-open row accepted")
	}
	// Correct CAS succeeds.
	if err := ch.Read(cmd, buf); err != nil {
		t.Fatal(err)
	}
	// Precharge then re-activate another row.
	ch.Precharge(0, 1, 2)
	if ch.OpenRow(0, 1, 2) != -1 {
		t.Fatal("precharge did not close row")
	}
	if err := ch.Activate(0, 1, 2, 6); err != nil {
		t.Fatal(err)
	}
	if ch.Activations != 2 || ch.Precharges != 1 || ch.Reads != 1 {
		t.Fatalf("stats: %d %d %d", ch.Activations, ch.Precharges, ch.Reads)
	}
}

func TestChipsDataPersistence(t *testing.T) {
	ch, _ := NewChips(SmallGeometry())
	cmd := Command{Rank: 0, BG: 0, BA: 0, Row: 1, Col: 0}
	ch.Activate(0, 0, 0, 1)

	want := bytes.Repeat([]byte{0xAB}, CachelineSize)
	w := cmd
	w.Kind = CmdWr
	if err := ch.Write(w, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, CachelineSize)
	r := cmd
	r.Kind = CmdRd
	if err := ch.Read(r, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read did not return written data")
	}
	// Unwritten locations read as zero.
	r2 := r
	r2.Col = 5
	if err := ch.Read(r2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, CachelineSize)) {
		t.Fatal("unwritten cacheline not zero")
	}
}

func TestPlainDIMMPassThrough(t *testing.T) {
	d, err := NewPlainDIMM(SmallGeometry())
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{7}, CachelineSize)
	rdata := make([]byte, CachelineSize)

	act := Command{Kind: CmdACT, Row: 3}
	if alert, err := d.HandleCommand(0, act, nil, nil); err != nil || alert {
		t.Fatalf("ACT: alert=%v err=%v", alert, err)
	}
	wr := Command{Kind: CmdWr, Row: 3, Col: 2}
	if _, err := d.HandleCommand(1, wr, data, nil); err != nil {
		t.Fatal(err)
	}
	rd := Command{Kind: CmdRd, Row: 3, Col: 2}
	if alert, err := d.HandleCommand(2, rd, nil, rdata); err != nil || alert {
		t.Fatalf("read: alert=%v err=%v", alert, err)
	}
	if !bytes.Equal(rdata, data) {
		t.Fatal("plain DIMM data mismatch")
	}
	pre := Command{Kind: CmdPRE}
	if _, err := d.HandleCommand(3, pre, nil, nil); err != nil {
		t.Fatal(err)
	}
	ref := Command{Kind: CmdREF}
	if _, err := d.HandleCommand(4, ref, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryCapacity(t *testing.T) {
	if got := DDR4Geometry16GB().CapacityBytes(); got != 16<<30 {
		t.Fatalf("16GB geometry = %d bytes", got)
	}
	if got := SmallGeometry().CapacityBytes(); got != uint64(16)*1024*128*64 {
		t.Fatalf("small geometry = %d bytes", got)
	}
}

func TestCommandKindString(t *testing.T) {
	want := map[CommandKind]string{CmdACT: "ACT", CmdPRE: "PRE", CmdRd: "rdCAS", CmdWr: "wrCAS", CmdREF: "REF"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d: %q != %q", k, k.String(), s)
		}
	}
}

func TestTimingDefaults(t *testing.T) {
	tm := DDR4_3200()
	if tm.TCKps != 625 || tm.CL != 22 {
		t.Fatalf("unexpected DDR4-3200 timings: %+v", tm)
	}
	// Sanity: read latency ~13.75ns.
	if ns := float64(tm.CL) * float64(tm.TCKps) / 1000; ns < 10 || ns > 20 {
		t.Fatalf("CL latency %v ns implausible", ns)
	}
}

// Property: Encode is injective over coordinates within geometry.
func TestEncodeInjectiveQuick(t *testing.T) {
	geo := SmallGeometry()
	m, _ := NewMapper(geo)
	f := func(a, b [5]uint16) bool {
		norm := func(v [5]uint16) (int, int, int, int, int) {
			return int(v[0]) % geo.Ranks, int(v[1]) % geo.BankGroups,
				int(v[2]) % geo.BanksPerBG, int(v[3]) % geo.Rows, int(v[4]) % geo.ColsPerRow
		}
		r1, g1, b1, ro1, c1 := norm(a)
		r2, g2, b2, ro2, c2 := norm(b)
		same := r1 == r2 && g1 == g2 && b1 == b2 && ro1 == ro2 && c1 == c2
		e1 := m.Encode(r1, g1, b1, ro1, c1)
		e2 := m.Encode(r2, g2, b2, ro2, c2)
		return (e1 == e2) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkChipsReadWrite(b *testing.B) {
	ch, _ := NewChips(SmallGeometry())
	ch.Activate(0, 0, 0, 0)
	buf := make([]byte, CachelineSize)
	w := Command{Kind: CmdWr, Row: 0}
	r := Command{Kind: CmdRd, Row: 0}
	b.SetBytes(2 * CachelineSize)
	for i := 0; i < b.N; i++ {
		col := i % 128
		w.Col, r.Col = col, col
		ch.Write(w, buf)
		ch.Read(r, buf)
	}
}
