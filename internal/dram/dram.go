// Package dram models a DDR4 memory subsystem at command granularity:
// the address mapping between physical addresses and DRAM coordinates
// (rank, bank group, bank, row, column), per-bank state machines driven
// by ACT/PRE/rdCAS/wrCAS/REF commands, DDR4-3200 timing parameters, and
// sparse backing storage holding the actual bytes.
//
// The model is the substrate beneath both a plain DIMM and the SmartDIMM
// buffer device (internal/core): SmartDIMM is "solely controlled by read
// and write commands received at the DIMM's buffer device" (§IV-C), so
// everything it does is triggered by the Command values defined here.
package dram

import (
	"fmt"
	"math/bits"

	"repro/internal/fault"
)

// CachelineSize is the data moved by one CAS command: a BL8 burst on an
// 8-byte-wide channel.
const CachelineSize = 64

// PageSize is the OS page granularity SmartDIMM registers ranges at.
const PageSize = 4096

// CommandKind enumerates the DDR commands the model distinguishes.
type CommandKind uint8

// DDR command kinds.
const (
	CmdACT CommandKind = iota // activate (RAS): open a row
	CmdPRE                    // precharge: close a bank's row
	CmdRd                     // rdCAS: read burst
	CmdWr                     // wrCAS: write burst
	CmdREF                    // refresh
)

// String returns the DDR mnemonic.
func (k CommandKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRd:
		return "rdCAS"
	case CmdWr:
		return "wrCAS"
	case CmdREF:
		return "REF"
	default:
		return fmt.Sprintf("CMD(%d)", uint8(k))
	}
}

// Command is one decoded DDR command as seen at the DIMM.
type Command struct {
	Kind CommandKind
	Rank int
	BG   int // bank group
	BA   int // bank address within group
	Row  int
	Col  int // column in cacheline units (BL8 bursts)
	// Core identifies the requesting CPU core for tracing, -1 if unknown.
	Core int
}

// Geometry describes one rank's DRAM organisation. Column counts are in
// cacheline (64B) units to match CAS granularity.
type Geometry struct {
	Ranks      int
	BankGroups int
	BanksPerBG int
	Rows       int
	ColsPerRow int // cachelines per row (a 8KB row = 128 cachelines)
}

// DDR4Geometry16GB returns the geometry used for the testbed's 16GB
// DIMMs: 2 ranks x 4 bank groups x 4 banks x 64K rows x 128 columns
// (8KB rows) x 64B = 16GB.
func DDR4Geometry16GB() Geometry {
	return Geometry{Ranks: 2, BankGroups: 4, BanksPerBG: 4, Rows: 65536, ColsPerRow: 128}
}

// SmallGeometry returns a reduced geometry that keeps unit tests and
// short simulations fast while preserving all structural behaviour.
func SmallGeometry() Geometry {
	return Geometry{Ranks: 1, BankGroups: 4, BanksPerBG: 4, Rows: 1024, ColsPerRow: 128}
}

// TotalBanks returns the number of banks across all ranks.
func (g Geometry) TotalBanks() int { return g.Ranks * g.BankGroups * g.BanksPerBG }

// CapacityBytes returns the rank-aggregate capacity.
func (g Geometry) CapacityBytes() uint64 {
	return uint64(g.TotalBanks()) * uint64(g.Rows) * uint64(g.ColsPerRow) * CachelineSize
}

// Timing holds the DDR4 timing parameters the memory controller obeys,
// in DRAM clock cycles, plus the clock period.
type Timing struct {
	TCKps int64 // clock period in picoseconds
	CL    int   // CAS read latency
	CWL   int   // CAS write latency
	TRCD  int   // ACT to CAS
	TRP   int   // PRE to ACT
	TRAS  int   // ACT to PRE
	TCCD  int   // CAS to CAS (same bank group, tCCD_L)
	TBL   int   // burst length in cycles (BL8 on DDR = 4 clock cycles)
	TWR   int   // write recovery
	TRTW  int   // read-to-write turnaround
	TWTR  int   // write-to-read turnaround
}

// DDR4_3200 returns DDR4-3200AA timings (1600MHz clock, 0.625ns tCK).
func DDR4_3200() Timing {
	return Timing{
		TCKps: 625,
		CL:    22, CWL: 16,
		TRCD: 22, TRP: 22, TRAS: 52,
		TCCD: 8, TBL: 4,
		TWR: 24, TRTW: 8, TWTR: 12,
	}
}

// Mapper converts between physical addresses and DRAM coordinates. The
// mapping is open-page friendly (column varies fastest, then bank group
// for CAS-to-CAS parallelism, then bank, rank, row), which is also what
// lets SmartDIMM's Addr Remap module regenerate a physical page number
// from {Row, BG, BA, Col} (§IV-C).
type Mapper struct {
	geo      Geometry
	colBits  uint
	bgBits   uint
	baBits   uint
	rankBits uint
}

// NewMapper builds a mapper for the geometry; all dimension sizes must
// be powers of two.
func NewMapper(geo Geometry) (*Mapper, error) {
	for name, v := range map[string]int{
		"ranks": geo.Ranks, "bank groups": geo.BankGroups,
		"banks per group": geo.BanksPerBG, "rows": geo.Rows, "cols": geo.ColsPerRow,
	} {
		if v <= 0 || v&(v-1) != 0 {
			return nil, fmt.Errorf("dram: %s = %d is not a positive power of two", name, v)
		}
	}
	return &Mapper{
		geo:      geo,
		colBits:  uint(bits.TrailingZeros(uint(geo.ColsPerRow))),
		bgBits:   uint(bits.TrailingZeros(uint(geo.BankGroups))),
		baBits:   uint(bits.TrailingZeros(uint(geo.BanksPerBG))),
		rankBits: uint(bits.TrailingZeros(uint(geo.Ranks))),
	}, nil
}

// Geometry returns the mapper's geometry.
func (m *Mapper) Geometry() Geometry { return m.geo }

// Decode converts a physical address to coordinates. The address must be
// within the capacity; the low 6 bits (within-cacheline offset) are
// ignored.
func (m *Mapper) Decode(phys uint64) (Command, error) {
	if phys >= m.geo.CapacityBytes() {
		return Command{}, fmt.Errorf("dram: address %#x beyond capacity %#x", phys, m.geo.CapacityBytes())
	}
	cl := phys >> 6
	col := int(cl & (uint64(m.geo.ColsPerRow) - 1))
	cl >>= m.colBits
	bg := int(cl & (uint64(m.geo.BankGroups) - 1))
	cl >>= m.bgBits
	ba := int(cl & (uint64(m.geo.BanksPerBG) - 1))
	cl >>= m.baBits
	rank := int(cl & (uint64(m.geo.Ranks) - 1))
	cl >>= m.rankBits
	row := int(cl)
	return Command{Rank: rank, BG: bg, BA: ba, Row: row, Col: col}, nil
}

// Encode converts coordinates back to a physical address — the Addr
// Remap operation of SmartDIMM's buffer device.
func (m *Mapper) Encode(rank, bg, ba, row, col int) uint64 {
	cl := uint64(row)
	cl = cl<<m.rankBits | uint64(rank)
	cl = cl<<m.baBits | uint64(ba)
	cl = cl<<m.bgBits | uint64(bg)
	cl = cl<<m.colBits | uint64(col)
	return cl << 6
}

// BankIndex flattens (rank, bg, ba) into a dense bank index, the key of
// SmartDIMM's Bank Table.
func (m *Mapper) BankIndex(rank, bg, ba int) int {
	return (rank*m.geo.BankGroups+bg)*m.geo.BanksPerBG + ba
}

// Chips is the DRAM device array of one DIMM: per-bank row state plus
// sparse page-granular backing storage. It enforces the protocol rules
// that matter to the model: CAS commands require the addressed row to be
// open, ACT requires the bank to be precharged.
type Chips struct {
	geo     Geometry
	mapper  *Mapper
	openRow []int32 // per bank: open row id, -1 when precharged
	pages   map[uint64]*[PageSize]byte
	// Stats
	Activations uint64
	Precharges  uint64
	Reads       uint64
	Writes      uint64
}

// NewChips allocates the device array.
func NewChips(geo Geometry) (*Chips, error) {
	m, err := NewMapper(geo)
	if err != nil {
		return nil, err
	}
	c := &Chips{
		geo:     geo,
		mapper:  m,
		openRow: make([]int32, geo.TotalBanks()),
		pages:   make(map[uint64]*[PageSize]byte),
	}
	for i := range c.openRow {
		c.openRow[i] = -1
	}
	return c, nil
}

// Mapper returns the address mapper bound to this device's geometry.
func (c *Chips) Mapper() *Mapper { return c.mapper }

// OpenRow returns the open row of the bank, or -1 if precharged.
func (c *Chips) OpenRow(rank, bg, ba int) int {
	return int(c.openRow[c.mapper.BankIndex(rank, bg, ba)])
}

// Activate opens a row. Activating an already-active bank is a protocol
// error (the controller must precharge first).
func (c *Chips) Activate(rank, bg, ba, row int) error {
	idx := c.mapper.BankIndex(rank, bg, ba)
	if c.openRow[idx] != -1 {
		return fmt.Errorf("dram: ACT to open bank %d (row %d open)", idx, c.openRow[idx])
	}
	if row < 0 || row >= c.geo.Rows {
		return fmt.Errorf("dram: row %d out of range", row)
	}
	c.openRow[idx] = int32(row)
	c.Activations++
	return nil
}

// Precharge closes a bank; precharging an idle bank is permitted (as
// PREA would be).
func (c *Chips) Precharge(rank, bg, ba int) {
	idx := c.mapper.BankIndex(rank, bg, ba)
	if c.openRow[idx] != -1 {
		c.Precharges++
	}
	c.openRow[idx] = -1
}

// checkOpen validates that a CAS command targets the open row.
func (c *Chips) checkOpen(cmd Command) error {
	idx := c.mapper.BankIndex(cmd.Rank, cmd.BG, cmd.BA)
	open := c.openRow[idx]
	if open == -1 {
		return fmt.Errorf("dram: CAS to precharged bank %d", idx)
	}
	if int(open) != cmd.Row {
		return fmt.Errorf("dram: CAS row %d but row %d is open in bank %d", cmd.Row, open, idx)
	}
	if cmd.Col < 0 || cmd.Col >= c.geo.ColsPerRow {
		return fmt.Errorf("dram: column %d out of range", cmd.Col)
	}
	return nil
}

// locate returns the backing page and offset for a command's cacheline.
func (c *Chips) locate(cmd Command, alloc bool) (*[PageSize]byte, int) {
	phys := c.mapper.Encode(cmd.Rank, cmd.BG, cmd.BA, cmd.Row, cmd.Col)
	pageNum := phys / PageSize
	off := int(phys % PageSize)
	p := c.pages[pageNum]
	if p == nil && alloc {
		p = new([PageSize]byte)
		c.pages[pageNum] = p
	}
	return p, off
}

// Read performs a rdCAS burst, returning the 64-byte cacheline.
func (c *Chips) Read(cmd Command, dst []byte) error {
	if err := c.checkOpen(cmd); err != nil {
		return err
	}
	if len(dst) < CachelineSize {
		return fmt.Errorf("dram: read buffer too small")
	}
	p, off := c.locate(cmd, false)
	if p == nil {
		for i := 0; i < CachelineSize; i++ {
			dst[i] = 0
		}
	} else {
		copy(dst, p[off:off+CachelineSize])
	}
	c.Reads++
	return nil
}

// Write performs a wrCAS burst, storing the 64-byte cacheline.
func (c *Chips) Write(cmd Command, src []byte) error {
	if err := c.checkOpen(cmd); err != nil {
		return err
	}
	if len(src) < CachelineSize {
		return fmt.Errorf("dram: write buffer too small")
	}
	p, off := c.locate(cmd, true)
	copy(p[off:off+CachelineSize], src[:CachelineSize])
	c.Writes++
	return nil
}

// Module is the channel-facing interface of a DIMM: the memory
// controller issues decoded commands and receives data and the ALERT_N
// indication. A plain DIMM forwards to the chips; SmartDIMM interposes
// its buffer device logic (internal/core).
type Module interface {
	// HandleCommand processes one command at the given DRAM clock cycle.
	// For CmdRd, data is returned in rdata. For CmdWr, wdata supplies the
	// burst. alert=true models ALERT_N: the controller must retry the
	// command later (§IV-D, S13 in Fig. 6).
	HandleCommand(cycle int64, cmd Command, wdata []byte, rdata []byte) (alert bool, err error)
	// Mapper exposes the module's address mapping.
	Mapper() *Mapper
}

// PlainDIMM is a regular DIMM: commands pass straight through the buffer
// device to the chips.
type PlainDIMM struct {
	chips *Chips
	// Faults, when non-nil, asserts spurious ALERT_N on rdCAS at site
	// "dram.alert" — the DIMM-side transient (CRC/parity on the command
	// bus) the controller's retry path exists for.
	Faults *fault.Injector
}

// NewPlainDIMM builds a pass-through DIMM over fresh chips.
func NewPlainDIMM(geo Geometry) (*PlainDIMM, error) {
	ch, err := NewChips(geo)
	if err != nil {
		return nil, err
	}
	return &PlainDIMM{chips: ch}, nil
}

// Chips exposes the underlying device array (tests and the SmartDIMM
// prototype share it).
func (d *PlainDIMM) Chips() *Chips { return d.chips }

// Mapper implements Module.
func (d *PlainDIMM) Mapper() *Mapper { return d.chips.mapper }

// HandleCommand implements Module.
func (d *PlainDIMM) HandleCommand(cycle int64, cmd Command, wdata []byte, rdata []byte) (bool, error) {
	switch cmd.Kind {
	case CmdACT:
		return false, d.chips.Activate(cmd.Rank, cmd.BG, cmd.BA, cmd.Row)
	case CmdPRE:
		d.chips.Precharge(cmd.Rank, cmd.BG, cmd.BA)
		return false, nil
	case CmdRd:
		if d.Faults.Fire("dram.alert", cycle) {
			return true, nil
		}
		return false, d.chips.Read(cmd, rdata)
	case CmdWr:
		return false, d.chips.Write(cmd, wdata)
	case CmdREF:
		return false, nil
	default:
		return false, fmt.Errorf("dram: unknown command %v", cmd.Kind)
	}
}
