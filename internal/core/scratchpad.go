// Package core implements the paper's primary contribution: the
// SmartDIMM buffer device (§IV) and the CompCpy offload API (§IV-A,
// Algorithm 2). The buffer device is a dram.Module — it is "solely
// controlled by read and write commands received at the DIMM's buffer
// device" — that interposes between the memory controller and the DRAM
// chips:
//
//   - a Bank Table mirrors open rows from ACT/PRE commands so CAS
//     commands can be remapped to physical addresses (Addr Remap);
//   - a Translation Table (3-ary cuckoo hash + CAM, internal/cuckoo)
//     maps physical page numbers to Scratchpad or Config Memory pages;
//   - the Arbiter implements the Fig. 6 decision flow: feeding source
//     reads to the DSA, swapping destination writebacks with Scratchpad
//     contents (Self-Recycle), serving still-pending destination reads
//     from the Scratchpad (S10) or asserting ALERT_N (S13);
//   - Domain-Specific Accelerators perform TLS (de/en)cryption
//     (internal/aesgcm's out-of-order cacheline engine) and Deflate
//     (de)compression (internal/deflate's hardware-style encoder).
package core

import (
	"fmt"

	"repro/internal/dram"
)

// PageSize is the offload granularity (4KB OS pages).
const PageSize = dram.PageSize

// LinesPerPage is the number of 64-byte cachelines per page.
const LinesPerPage = PageSize / dram.CachelineSize

// lineState tracks one destination cacheline in the Scratchpad.
type lineState uint8

const (
	linePending  lineState = iota // DSA has not produced this line yet
	lineReady                     // result in Scratchpad, awaiting recycle
	lineRecycled                  // written back to DRAM, slot free
)

// spPage is one 4KB Scratchpad page holding a destination buffer's DSA
// results until LLC writebacks recycle them into DRAM.
type spPage struct {
	inUse     bool
	dbufPage  uint64 // physical page number served by this scratchpad page
	data      [PageSize]byte
	state     [LinesPerPage]lineState
	readyAt   [LinesPerPage]int64 // DRAM cycle when the DSA result lands
	remaining int                 // lines not yet recycled
	rec       *record
}

// scratchpad manages the on-chip SRAM pages (§IV-B/C).
type scratchpad struct {
	pages []spPage
	free  []int // free page indices (LIFO)
}

func newScratchpad(nPages int) *scratchpad {
	s := &scratchpad{pages: make([]spPage, nPages), free: make([]int, 0, nPages)}
	for i := nPages - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	return s
}

// alloc reserves a page for dbufPage, or returns -1 when full.
func (s *scratchpad) alloc(dbufPage uint64, rec *record) int {
	if len(s.free) == 0 {
		return -1
	}
	idx := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	p := &s.pages[idx]
	*p = spPage{inUse: true, dbufPage: dbufPage, remaining: LinesPerPage, rec: rec}
	for i := range p.state {
		p.state[i] = linePending
	}
	return idx
}

// release returns a fully recycled page to the free list.
func (s *scratchpad) release(idx int) {
	s.pages[idx].inUse = false
	s.free = append(s.free, idx)
}

// freePages returns the number of available pages.
func (s *scratchpad) freePages() int { return len(s.free) }

// usedPages returns the number of allocated pages.
func (s *scratchpad) usedPages() int { return len(s.pages) - len(s.free) }

// occupancyBytes returns the bytes of Scratchpad currently holding
// un-recycled results — the quantity Fig. 10 plots.
func (s *scratchpad) occupancyBytes() int {
	n := 0
	for i := range s.pages {
		p := &s.pages[i]
		if p.inUse {
			n += p.remaining * dram.CachelineSize
		}
	}
	return n
}

// pendingPages lists the physical page numbers of in-use (not fully
// recycled) destination pages — what Force-Recycle reads from the MMIO
// config space (Algorithm 1).
func (s *scratchpad) pendingPages() []uint64 {
	var out []uint64
	for i := range s.pages {
		if s.pages[i].inUse {
			out = append(out, s.pages[i].dbufPage)
		}
	}
	return out
}

// configPage is one 4KB Config Memory page holding the per-source-page
// offload context (§IV-C). raw accumulates the serialized context bytes
// the CPU writes through the MMIO window.
type configPage struct {
	inUse bool
	raw   []byte
	rec   *record
}

// configMem manages Config Memory pages.
type configMem struct {
	pages []configPage
	free  []int
}

func newConfigMem(nPages int) *configMem {
	c := &configMem{pages: make([]configPage, nPages), free: make([]int, 0, nPages)}
	for i := nPages - 1; i >= 0; i-- {
		c.free = append(c.free, i)
	}
	return c
}

func (c *configMem) alloc(rec *record) int {
	if len(c.free) == 0 {
		return -1
	}
	idx := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.pages[idx] = configPage{inUse: true, raw: nil, rec: rec}
	return idx
}

func (c *configMem) release(idx int) {
	c.pages[idx] = configPage{}
	c.free = append(c.free, idx)
}

func (c *configMem) freePages() int { return len(c.free) }

// translation is a Translation Table entry: the paper differentiates
// Config Memory and Scratchpad mappings with a single-bit flag; source
// entries also carry the destination page(s) and context offset.
type translation struct {
	isSource bool
	// For source pages:
	cfgIdx    int    // Config Memory page holding the context
	destPage  uint64 // physical page number of the paired destination
	pageIndex int    // index of this page within the record
	rec       *record
	// For destination pages:
	spIdx int // Scratchpad page index
}

// record is one in-flight offload: a ULP message spanning one or more
// 4KB pages, processed by one DSA instance.
type record struct {
	op        Opcode
	dsa       dsaInstance
	cfgIdx    int
	srcPages  []uint64 // physical page numbers, record order
	destPages []uint64
	length    int // total record bytes
	// processed tracks which source cachelines have been fed to the DSA
	// (S6/S7 bookkeeping); indexed by record cacheline index.
	processed []bool
	donePages int // destination pages fully recycled
}

func (r *record) String() string {
	return fmt.Sprintf("record(op=%v len=%d pages=%d)", r.op, r.length, len(r.srcPages))
}
