package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/dram"
	"repro/internal/telemetry"
)

// Errors returned by the CompCpy path. ErrNoScratchpad, ErrDSAFault and
// ErrTranslationInsert are degradable: the offload layer falls back to
// the CPU software path when it sees them (errors.Is).
var (
	// ErrNoScratchpad means the Scratchpad (or Config Memory) could not
	// supply enough pages even after Force-Recycle.
	ErrNoScratchpad = errors.New("core: scratchpad exhausted")
	// ErrNotAligned mirrors Algorithm 2's page-alignment check.
	ErrNotAligned = errors.New("core: buffers must be 4KB page aligned")
	// ErrTranslationInsert means the device's Translation Table could not
	// accept a registration (cuckoo + CAM full, or an injected fault).
	ErrTranslationInsert = errors.New("core: translation table insert failed")
	// ErrDSAFault means the device aborted the record because a DSA
	// faulted mid-offload; the destination buffer holds no usable data.
	ErrDSAFault = errors.New("core: DSA fault aborted the offload")
)

// Host is the memory-system interface CompCpy drives: cached loads and
// stores, cache-line flushes, memory barriers, and uncached MMIO
// accesses to the SmartDIMM config space. internal/memsys implements it.
type Host interface {
	Read64(core int, addr uint64, dst []byte) (int64, error)
	Write64(core int, addr uint64, src []byte) (int64, error)
	Flush(addr uint64, size int) (int64, error)
	Membar() error
	MMIOWrite(addr uint64, src []byte) (int64, error)
	MMIORead(addr uint64, dst []byte) (int64, error)
}

// DriverStats counts software-side events.
type DriverStats struct {
	CompCpyCalls      uint64
	ForceRecycleCalls uint64
	StatusReads       uint64 // lazy freePages refreshes (Algorithm 2 line 9)
	BytesOffloaded    uint64
	PagesAllocated    uint64
	PagesFreed        uint64
	OffloadAborts     uint64 // CompCpy calls that failed and aborted the record
}

// Driver is the SmartDIMM kernel-driver model (§V-C): it owns the
// device's physical range, allocates offload buffers to applications,
// and implements CompCpy (Algorithm 2) and Force-Recycle (Algorithm 1).
type Driver struct {
	host Host
	// Base is the global physical address where the SmartDIMM range
	// starts; MMIOBase is the global address of the config space.
	Base     uint64
	MMIOBase uint64

	// AbortProbe, when non-nil, reports the device's cumulative record
	// aborts (DeviceStats.RecordAborts). CompCpy samples it around the
	// copy to detect a DSA fault that the data path cannot signal — the
	// hardware would raise an interrupt; the model reads a counter. The
	// simulator is synchronous, so a delta can only come from this call's
	// own record.
	AbortProbe func() uint64

	// Clock, when non-nil, supplies the current simulated time in
	// picoseconds (sim.Engine.Now); Tracer then records one span per
	// CompCpy call and an instant per Force-Recycle on TraceTrack.
	Clock      func() int64
	Tracer     *telemetry.Tracer
	TraceTrack telemetry.TrackID

	mu        sync.Mutex
	freePages int64 // lazily refreshed Scratchpad page estimate
	nextPage  uint64
	limitPage uint64
	freeLists map[int][]uint64 // free buffer lists keyed by page count
	stats     DriverStats
}

// NewDriver binds a driver to the host memory system. base is the global
// address of the SmartDIMM module's range, devCapacity its size in
// bytes, and mmioPages the pages reserved at the top for config space.
func NewDriver(host Host, base uint64, devCapacity uint64, mmioPages int) *Driver {
	return &Driver{
		host:      host,
		Base:      base,
		MMIOBase:  base + devCapacity - uint64(mmioPages)*PageSize,
		freePages: -1, // unknown until first refresh, as in Algorithm 2
		nextPage:  base / PageSize,
		limitPage: (base + devCapacity - uint64(mmioPages)*PageSize) / PageSize,
		freeLists: make(map[int][]uint64),
	}
}

// Stats returns a copy of the driver statistics.
func (d *Driver) Stats() DriverStats { return d.stats }

// Collect implements telemetry.Collector.
func (s DriverStats) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "compcpy_calls", Value: float64(s.CompCpyCalls)})
	emit(telemetry.Sample{Name: "force_recycles", Value: float64(s.ForceRecycleCalls)})
	emit(telemetry.Sample{Name: "status_reads", Value: float64(s.StatusReads)})
	emit(telemetry.Sample{Name: "bytes_offloaded", Value: float64(s.BytesOffloaded)})
	emit(telemetry.Sample{Name: "pages_allocated", Value: float64(s.PagesAllocated)})
	emit(telemetry.Sample{Name: "pages_freed", Value: float64(s.PagesFreed)})
	emit(telemetry.Sample{Name: "offload_aborts", Value: float64(s.OffloadAborts)})
}

// nowPs samples the simulated clock, or 0 when no clock is wired.
func (d *Driver) nowPs() int64 {
	if d.Clock == nil {
		return 0
	}
	return d.Clock()
}

// OutstandingPages returns the pages currently allocated to offload
// buffers (allocated minus freed). The fleet's cross-device conservation
// invariant sums this over every rank's driver.
func (d *Driver) OutstandingPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int(d.stats.PagesAllocated - d.stats.PagesFreed)
}

// SetAllocRange narrows the page allocator to [start, end) so the
// driver can share the device's address range with other users (e.g.
// the OS using SmartDIMM capacity as regular memory, Benefit B2).
func (d *Driver) SetAllocRange(start, end uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextPage = start / PageSize
	d.limitPage = end / PageSize
	d.freeLists = make(map[int][]uint64)
}

// AllocPages reserves n contiguous 4KB pages on SmartDIMM, returning the
// global physical address.
func (d *Driver) AllocPages(n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("core: alloc of %d pages", n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if list := d.freeLists[n]; len(list) > 0 {
		addr := list[len(list)-1]
		d.freeLists[n] = list[:len(list)-1]
		d.stats.PagesAllocated += uint64(n)
		return addr, nil
	}
	if d.nextPage+uint64(n) > d.limitPage {
		return 0, fmt.Errorf("core: SmartDIMM address range exhausted")
	}
	addr := d.nextPage * PageSize
	d.nextPage += uint64(n)
	d.stats.PagesAllocated += uint64(n)
	return addr, nil
}

// FreePages returns a buffer of n pages to the allocator.
func (d *Driver) FreePages(addr uint64, n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.freeLists[n] = append(d.freeLists[n], addr)
	d.stats.PagesFreed += uint64(n)
}

// readStatus refreshes freePages from the device's MMIO status word.
func (d *Driver) readStatus() (free int64, pendingCount int64, err error) {
	var buf [dram.CachelineSize]byte
	if _, err := d.host.MMIORead(d.MMIOBase, buf[:]); err != nil {
		return 0, 0, err
	}
	d.stats.StatusReads++
	return int64(binary.LittleEndian.Uint64(buf[0:])),
		int64(binary.LittleEndian.Uint64(buf[8:])), nil
}

// forceRecycle implements Algorithm 1: read the pending-page list from
// the MMIO config space and flush those pages so their LLC-resident
// cachelines write back and recycle Scratchpad lines.
func (d *Driver) forceRecycle(requiredToBeFree int) error {
	d.stats.ForceRecycleCalls++
	d.Tracer.Instant(d.TraceTrack, "force-recycle", d.nowPs())
	_, pending, err := d.readStatus()
	if err != nil {
		return err
	}
	freed := 0
	var buf [dram.CachelineSize]byte
	for chunk := 0; int64(chunk*8) < pending; chunk++ {
		if _, err := d.host.MMIORead(d.MMIOBase+uint64(chunk+1)*dram.CachelineSize, buf[:]); err != nil {
			return err
		}
		for i := 0; i < 8 && int64(chunk*8+i) < pending; i++ {
			page := binary.LittleEndian.Uint64(buf[i*8:])
			if page == 0 {
				continue
			}
			if _, err := d.host.Flush(page*PageSize, PageSize); err != nil {
				return err
			}
			freed++
			if freed > requiredToBeFree {
				return nil
			}
		}
	}
	return nil
}

// CompCpy is Algorithm 2: transform size bytes from sbuf into dbuf using
// the DSA selected by ctx while copying. Both buffers must be 4KB
// aligned global addresses inside the SmartDIMM range. ordered forces a
// memory barrier between 64-byte copies (required by the sequential
// (de)compression DSAs). It returns the modelled elapsed time in
// picoseconds.
func (d *Driver) CompCpy(core int, dbuf, sbuf uint64, size int, ctx *OffloadContext, ordered bool) (int64, error) {
	if dbuf%PageSize != 0 || sbuf%PageSize != 0 {
		return 0, ErrNotAligned
	}
	if size <= 0 {
		return 0, fmt.Errorf("core: CompCpy size %d", size)
	}
	nPages := (size + PageSize - 1) / PageSize
	var elapsed int64

	// Lines 7-17: reserve Scratchpad pages under the lock, refreshing
	// the lazy freePages counter and force-recycling only when low.
	d.mu.Lock()
	if d.freePages <= int64(nPages) {
		free, _, err := d.readStatus()
		if err != nil {
			d.mu.Unlock()
			return 0, err
		}
		d.freePages = free
		if d.freePages <= int64(nPages) { // unlikely (§VII-A)
			if err := d.forceRecycle(nPages); err != nil {
				d.mu.Unlock()
				return 0, err
			}
			free, _, err = d.readStatus()
			if err != nil {
				d.mu.Unlock()
				return 0, err
			}
			d.freePages = free
			if d.freePages <= int64(nPages) {
				d.mu.Unlock()
				return 0, ErrNoScratchpad
			}
		}
	}
	d.freePages -= int64(nPages)
	d.stats.CompCpyCalls++
	d.stats.BytesOffloaded += uint64(size)
	d.mu.Unlock()

	// Line 19: flush sbuf to DRAM so the DIMM observes the source bytes.
	lat, err := d.host.Flush(sbuf, size)
	if err != nil {
		return 0, err
	}
	elapsed += lat

	// Snapshot the device's abort counter: a DSA fault mid-offload tears
	// the record down device-side without an error on the data path, so
	// the driver detects it by the counter moving.
	var abortsBefore uint64
	if d.AbortProbe != nil {
		abortsBefore = d.AbortProbe()
	}

	// Lines 21-23: register source and destination ranges plus context.
	lat, err = d.register(sbuf, dbuf, size, nPages, ctx)
	if err != nil {
		d.abortOffload(sbuf)
		return 0, err
	}
	elapsed += lat

	// Lines 24-31: the copy itself, optionally ordered. The unordered
	// copy overlaps outstanding misses (memMLP); the ordered variant
	// serializes on the fence between 64-byte segments.
	var line [dram.CachelineSize]byte
	var copyLat int64
	for off := 0; off < size; off += dram.CachelineSize {
		rl, err := d.host.Read64(core, sbuf+uint64(off), line[:])
		if err != nil {
			d.abortOffload(sbuf)
			return 0, err
		}
		wl, err := d.host.Write64(core, dbuf+uint64(off), line[:])
		if err != nil {
			d.abortOffload(sbuf)
			return 0, err
		}
		copyLat += rl + wl
		if ordered {
			if err := d.host.Membar(); err != nil {
				return 0, err
			}
			copyLat += membarPs * memMLP // fence cost is not overlapped
		}
	}
	if d.AbortProbe != nil && d.AbortProbe() > abortsBefore {
		d.mu.Lock()
		d.stats.OffloadAborts++
		d.mu.Unlock()
		return 0, fmt.Errorf("core: record aborted mid-offload: %w", ErrDSAFault)
	}
	elapsed += copyLat / memMLP
	if d.Tracer != nil {
		d.Tracer.Span(d.TraceTrack, "CompCpy", d.nowPs(), elapsed)
	}
	return elapsed, nil
}

// abortOffload best-effort tears down a record the driver gave up on
// (registration or copy failure), so the device's Scratchpad, Config
// Memory and Translation Table entries are reclaimed instead of leaking.
func (d *Driver) abortOffload(sbuf uint64) {
	d.mu.Lock()
	d.stats.OffloadAborts++
	d.mu.Unlock()
	var hdr [dram.CachelineSize]byte
	binary.LittleEndian.PutUint16(hdr[0:], regMagic)
	hdr[2] = opAbort
	binary.LittleEndian.PutUint64(hdr[8:], d.localPage(sbuf))
	d.host.MMIOWrite(d.MMIOBase, hdr[:]) // best effort; errors are moot here
}

// AbortBuffer tears down any in-flight record registered on the n-page
// buffer at addr (a global address within this driver's range). The
// fleet calls it before freeing a migrating connection's buffers: a
// record stranded by a failed operation must not keep Scratchpad,
// Config Memory or Translation Table entries alive past the buffer's
// lifetime. Pages with no registered record are no-ops on the device.
func (d *Driver) AbortBuffer(addr uint64, n int) {
	var hdr [dram.CachelineSize]byte
	binary.LittleEndian.PutUint16(hdr[0:], regMagic)
	hdr[2] = opAbort
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(hdr[8:], d.localPage(addr)+uint64(i))
		// A stranded record silently corrupts later buffer reuse, so
		// unlike the single-shot abort on the CompCpy error path this
		// one retries through transient channel faults.
		for try := 0; try < 4; try++ {
			if _, err := d.host.MMIOWrite(d.MMIOBase, hdr[:]); err == nil {
				break
			}
		}
	}
}

// membarPs is the modelled cost of the store fence inserted between
// ordered 64-byte copies (Algorithm 2, line 27).
const membarPs = 25_000

// memMLP mirrors sim.MemMLP: bulk copies overlap outstanding misses.
const memMLP = 4

// register transmits the per-page registration headers and the record
// context through the MMIO window (S17).
func (d *Driver) register(sbuf, dbuf uint64, size, nPages int, ctx *OffloadContext) (int64, error) {
	raw, err := marshalContext(ctx)
	if err != nil {
		return 0, err
	}
	recordLen := ctx.Length
	switch ctx.Op {
	case OpTLSEncrypt, OpTLSDecrypt:
		recordLen = ctx.Length + TagSize
	}
	if recordLen > size {
		return 0, fmt.Errorf("core: record length %d exceeds CompCpy size %d", recordLen, size)
	}
	var elapsed int64
	var hdr [dram.CachelineSize]byte
	for p := 0; p < nPages; p++ {
		for i := range hdr {
			hdr[i] = 0
		}
		binary.LittleEndian.PutUint16(hdr[0:], regMagic)
		hdr[2] = byte(ctx.Op)
		ctxLen := 0
		if p == 0 {
			ctxLen = len(raw)
		}
		binary.LittleEndian.PutUint16(hdr[4:], uint16(ctxLen))
		binary.LittleEndian.PutUint16(hdr[6:], uint16(p))
		binary.LittleEndian.PutUint64(hdr[8:], d.localPage(sbuf)+uint64(p))
		binary.LittleEndian.PutUint64(hdr[16:], d.localPage(dbuf)+uint64(p))
		binary.LittleEndian.PutUint32(hdr[24:], uint32(recordLen))
		binary.LittleEndian.PutUint64(hdr[28:], d.localPage(sbuf))
		lat, err := d.host.MMIOWrite(d.MMIOBase, hdr[:])
		if err != nil {
			return 0, err
		}
		elapsed += lat
		if p == 0 {
			for off := 0; off < len(raw); off += dram.CachelineSize {
				var chunk [dram.CachelineSize]byte
				copy(chunk[:], raw[off:])
				k := off / dram.CachelineSize
				lat, err := d.host.MMIOWrite(d.MMIOBase+uint64(k+1)*dram.CachelineSize, chunk[:])
				if err != nil {
					return 0, err
				}
				elapsed += lat
			}
		}
	}
	return elapsed, nil
}

// localPage converts a global physical address to the device-local page
// number carried in registration headers.
func (d *Driver) localPage(global uint64) uint64 {
	return (global - d.Base) / PageSize
}

// Use implements the USE step of Algorithm 2 (lines 32-34): flush the
// destination buffer so stale cached copies write back (recycling the
// Scratchpad) and then read the transformed bytes.
func (d *Driver) Use(core int, dbuf uint64, size int) ([]byte, int64, error) {
	lat, err := d.host.Flush(dbuf, size)
	if err != nil {
		return nil, 0, err
	}
	out := make([]byte, 0, size)
	var line [dram.CachelineSize]byte
	var rdLat int64
	for off := 0; off < size; off += dram.CachelineSize {
		rl, err := d.host.Read64(core, dbuf+uint64(off), line[:])
		if err != nil {
			return nil, 0, err
		}
		rdLat += rl
		n := size - off
		if n > dram.CachelineSize {
			n = dram.CachelineSize
		}
		out = append(out, line[:n]...)
	}
	return out, lat + rdLat/memMLP, nil
}

// WriteBuffer copies data into a SmartDIMM buffer through the cache (the
// application filling sbuf before CompCpy).
func (d *Driver) WriteBuffer(core int, addr uint64, data []byte) (int64, error) {
	var elapsed int64
	var line [dram.CachelineSize]byte
	for off := 0; off < len(data); off += dram.CachelineSize {
		n := copy(line[:], data[off:])
		for i := n; i < dram.CachelineSize; i++ {
			line[i] = 0
		}
		lat, err := d.host.Write64(core, addr+uint64(off), line[:])
		if err != nil {
			return 0, err
		}
		elapsed += lat
	}
	return elapsed / memMLP, nil
}
