package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/aesgcm"
	"repro/internal/deflate"
	"repro/internal/dram"
)

// Opcode selects the DSA operation for an offload.
type Opcode uint8

// Offload opcodes carried in the MMIO registration header.
const (
	OpNone       Opcode = iota
	OpTLSEncrypt        // AES-GCM encrypt + tag into trailer
	OpTLSDecrypt        // AES-GCM decrypt + tag verification
	OpCompress          // Deflate compress one 4KB page
	OpDecompress        // Inflate one compressed page
)

// String names the opcode.
func (o Opcode) String() string {
	switch o {
	case OpNone:
		return "none"
	case OpTLSEncrypt:
		return "tls-encrypt"
	case OpTLSDecrypt:
		return "tls-decrypt"
	case OpCompress:
		return "compress"
	case OpDecompress:
		return "decompress"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// TagSize re-exports the AEAD tag size for record-layout computations.
const TagSize = aesgcm.TagSize

// destLine is one 64-byte output the DSA produced, addressed by byte
// offset within the destination record space.
type destLine struct {
	RecOff int
	Data   [dram.CachelineSize]byte
}

// dsaInstance is the per-record accelerator state machine. The arbiter
// feeds it source cachelines (in rdCAS arrival order, §IV-D) and places
// the returned destination lines into the Scratchpad.
type dsaInstance interface {
	// ProcessSourceLine consumes the source cacheline at byte offset off
	// within the record. Returned lines may include earlier offsets that
	// only now became computable (e.g. the TLS trailer once the tag is
	// final).
	ProcessSourceLine(off int, src []byte) ([]destLine, error)
	// DestLen returns the size in bytes of the destination record space.
	DestLen() int
}

// --- TLS DSA (§V-A, Fig. 7) -------------------------------------------

// TLSContext is the offload context the CPU writes to Config Memory for
// a TLS record: the cipher key, the record nonce, the CPU-computed hash
// subkey H and encrypted IV, the AAD, and the payload length. The record
// buffer layout is [payload | 16-byte tag trailer].
type TLSContext struct {
	Direction  aesgcm.Direction
	Key        []byte
	IV         []byte
	H          []byte
	EIV        []byte
	AAD        []byte
	PayloadLen int
}

// tlsDSA adapts the out-of-order cacheline engine to the record layout.
type tlsDSA struct {
	eng        *aesgcm.CachelineEngine
	dir        aesgcm.Direction
	payloadLen int
	// held buffers lines overlapping the trailer until the tag is final.
	held map[int][dram.CachelineSize]byte
	// srcTag accumulates the received tag bytes on the decrypt path;
	// tagSeen counts captured bytes so verification waits for all 16.
	srcTag  [TagSize]byte
	tagSeen int
	trailer [TagSize]byte // final trailer content, valid once flushed
	authErr bool
	flushed bool
}

func newTLSDSA(ctx TLSContext) (*tlsDSA, error) {
	eng, err := aesgcm.NewCachelineEngine(ctx.Direction, aesgcm.RecordConfig{
		Key: ctx.Key, IV: ctx.IV, H: ctx.H, EIV: ctx.EIV, AAD: ctx.AAD,
		Length: ctx.PayloadLen,
	})
	if err != nil {
		return nil, err
	}
	return &tlsDSA{
		eng: eng, dir: ctx.Direction, payloadLen: ctx.PayloadLen,
		held: make(map[int][dram.CachelineSize]byte),
	}, nil
}

// DestLen implements dsaInstance: payload plus the tag trailer.
func (d *tlsDSA) DestLen() int { return d.payloadLen + TagSize }

// trailerEnd is the end of the record space.
func (d *tlsDSA) trailerEnd() int { return d.payloadLen + TagSize }

func (d *tlsDSA) ProcessSourceLine(off int, src []byte) ([]destLine, error) {
	if off%dram.CachelineSize != 0 {
		return nil, fmt.Errorf("core: unaligned DSA offset %d", off)
	}
	if off >= d.trailerEnd() {
		return nil, fmt.Errorf("core: offset %d beyond record", off)
	}
	lineEnd := off + dram.CachelineSize
	if lineEnd > d.trailerEnd() {
		lineEnd = d.trailerEnd()
	}

	var out [dram.CachelineSize]byte
	if off < d.payloadLen {
		want := d.payloadLen - off
		if want > dram.CachelineSize {
			want = dram.CachelineSize
		}
		if len(src) < want {
			return nil, fmt.Errorf("core: short source line at %d", off)
		}
		if err := d.eng.ProcessCacheline(out[:want], src[:want], off); err != nil {
			return nil, err
		}
	}
	// Capture received tag bytes (decrypt path) from the trailer region.
	if d.dir == aesgcm.Decrypt && lineEnd > d.payloadLen {
		from := d.payloadLen
		if off > from {
			from = off
		}
		for b := from; b < lineEnd && b-off < len(src); b++ {
			d.srcTag[b-d.payloadLen] = src[b-off]
			d.tagSeen++
		}
	}

	var lines []destLine
	switch {
	case lineEnd <= d.payloadLen:
		lines = append(lines, destLine{RecOff: off, Data: out})
	case d.flushed:
		// Tag already final: patch the trailer bytes in directly.
		d.patchTrailer(&out, off, lineEnd)
		lines = append(lines, destLine{RecOff: off, Data: out})
	default:
		// Overlaps the trailer: hold until the tag is final.
		d.held[off] = out
	}
	canFlush := d.eng.Done() && (d.dir == aesgcm.Encrypt || d.tagSeen >= TagSize)
	if canFlush && !d.flushed {
		flushed, err := d.flushTrailer()
		if err != nil {
			return nil, err
		}
		lines = append(lines, flushed...)
	}
	return lines, nil
}

// patchTrailer copies the final trailer bytes into a line's buffer.
func (d *tlsDSA) patchTrailer(data *[dram.CachelineSize]byte, off, lineEnd int) {
	for b := d.payloadLen; b < lineEnd && b < d.trailerEnd(); b++ {
		if b >= off {
			data[b-off] = d.trailer[b-d.payloadLen]
		}
	}
}

// flushTrailer finalizes held lines once the engine is done: on encrypt
// the tag is written into the trailer bytes; on decrypt the received tag
// is verified and the trailer's first byte reports the result (1 = ok).
func (d *tlsDSA) flushTrailer() ([]destLine, error) {
	d.flushed = true
	if d.dir == aesgcm.Encrypt {
		tag, err := d.eng.Tag()
		if err != nil {
			return nil, err
		}
		copy(d.trailer[:], tag)
	} else {
		if err := d.eng.VerifyTag(d.srcTag[:]); err != nil {
			d.authErr = true
			// trailer stays zero: verification failed.
		} else {
			d.trailer[0] = 1
		}
	}
	var lines []destLine
	for off, data := range d.held {
		d.patchTrailer(&data, off, off+dram.CachelineSize)
		lines = append(lines, destLine{RecOff: off, Data: data})
	}
	d.held = nil
	return lines, nil
}

// AuthFailed reports a tag verification failure on the decrypt path.
func (d *tlsDSA) AuthFailed() bool { return d.authErr }

// --- Deflate DSA (§V-B) ------------------------------------------------

// Compressed page format produced by the Deflate DSA: a 4-byte
// little-endian header (bit 31 set = stored raw because the deflate
// stream would not fit; low 24 bits = payload length) followed by the
// payload, zero-padded to the page size. Compression happens exclusively
// at 4KB page granularity (§V-C).
const (
	compHeaderSize = 4
	compRawFlag    = 1 << 31
)

// MaxCompressInput is the largest input one compression offload accepts:
// the 4-byte page header must leave room for the raw fallback when the
// data is incompressible, so the software stack chunks responses at
// PageSize-4 bytes rather than full pages (a divergence from the paper's
// "4KB granularity" wording that the paper's format leaves unspecified).
const MaxCompressInput = PageSize - compHeaderSize

// EncodeCompressedPage formats a compressed (or raw-fallback) page.
// Inputs longer than MaxCompressInput cannot be framed (no room for the
// raw fallback) and are rejected with an error.
func EncodeCompressedPage(orig []byte, enc *deflate.HWEncoder) ([]byte, error) {
	if len(orig) > MaxCompressInput {
		return nil, fmt.Errorf("core: compression input %d exceeds %d", len(orig), MaxCompressInput)
	}
	out := make([]byte, PageSize)
	stream := enc.Compress(orig)
	if len(stream)+compHeaderSize <= PageSize {
		binary.LittleEndian.PutUint32(out, uint32(len(stream)))
		copy(out[compHeaderSize:], stream)
	} else {
		binary.LittleEndian.PutUint32(out, compRawFlag|uint32(len(orig)))
		copy(out[compHeaderSize:], orig)
	}
	return out, nil
}

// DecodeCompressedPage reverses EncodeCompressedPage.
func DecodeCompressedPage(page []byte) ([]byte, error) {
	if len(page) < compHeaderSize {
		return nil, errors.New("core: compressed page too short")
	}
	hdr := binary.LittleEndian.Uint32(page)
	n := int(hdr &^ compRawFlag)
	if compHeaderSize+n > len(page) {
		return nil, fmt.Errorf("core: compressed payload length %d overruns page", n)
	}
	payload := page[compHeaderSize : compHeaderSize+n]
	if hdr&compRawFlag != 0 {
		return append([]byte(nil), payload...), nil
	}
	return deflate.DecompressLimit(payload, PageSize)
}

// CompressedPayloadLen returns the payload length recorded in a
// compressed page header (for bandwidth accounting in the server model).
func CompressedPayloadLen(page []byte) (int, error) {
	if len(page) < compHeaderSize {
		return 0, errors.New("core: compressed page too short")
	}
	return int(binary.LittleEndian.Uint32(page) &^ compRawFlag), nil
}

// deflateDSA compresses one page arriving strictly in order (compression
// offloads use CompCpy's ordered mode, Algorithm 2 lines 24-28).
type deflateDSA struct {
	enc     *deflate.HWEncoder
	buf     [PageSize]byte
	length  int // input bytes expected
	nextOff int
}

func newDeflateDSA(length int, cfg deflate.HWConfig) (*deflateDSA, error) {
	if length <= 0 || length > MaxCompressInput {
		return nil, fmt.Errorf("core: compression length %d not within %d", length, MaxCompressInput)
	}
	return &deflateDSA{enc: deflate.NewHWEncoder(cfg), length: length}, nil
}

// DestLen implements dsaInstance: the destination is always a full page.
func (d *deflateDSA) DestLen() int { return PageSize }

func (d *deflateDSA) ProcessSourceLine(off int, src []byte) ([]destLine, error) {
	if off != d.nextOff {
		return nil, fmt.Errorf("core: deflate DSA requires in-order lines (got %d, want %d); use ordered CompCpy", off, d.nextOff)
	}
	n := copy(d.buf[off:], src)
	d.nextOff += n
	if d.nextOff < d.length {
		return nil, nil
	}
	page, err := EncodeCompressedPage(d.buf[:d.length], d.enc)
	if err != nil {
		return nil, err
	}
	return pageToLines(page), nil
}

// inflateDSA decompresses one compressed page arriving in order.
type inflateDSA struct {
	buf     [PageSize]byte
	length  int
	nextOff int
}

func newInflateDSA(length int) (*inflateDSA, error) {
	if length <= 0 || length > PageSize {
		return nil, fmt.Errorf("core: decompression length %d not within one page", length)
	}
	return &inflateDSA{length: length}, nil
}

// DestLen implements dsaInstance.
func (d *inflateDSA) DestLen() int { return PageSize }

func (d *inflateDSA) ProcessSourceLine(off int, src []byte) ([]destLine, error) {
	if off != d.nextOff {
		return nil, fmt.Errorf("core: inflate DSA requires in-order lines (got %d, want %d)", off, d.nextOff)
	}
	n := copy(d.buf[off:], src)
	d.nextOff += n
	if d.nextOff < d.length {
		return nil, nil
	}
	orig, err := DecodeCompressedPage(d.buf[:d.length])
	if err != nil {
		return nil, err
	}
	var page [PageSize]byte
	copy(page[:], orig)
	return pageToLines(page[:]), nil
}

// pageToLines splits a full page into destination lines.
func pageToLines(page []byte) []destLine {
	lines := make([]destLine, 0, LinesPerPage)
	for off := 0; off < len(page); off += dram.CachelineSize {
		var dl destLine
		dl.RecOff = off
		copy(dl.Data[:], page[off:off+dram.CachelineSize])
		lines = append(lines, dl)
	}
	return lines
}

// --- Context serialization ---------------------------------------------

// OffloadContext is everything CompCpy transmits to the device through
// the MMIO registration header and subsequent Config Memory writes.
type OffloadContext struct {
	Op  Opcode
	TLS *TLSContext      // for OpTLSEncrypt / OpTLSDecrypt
	HW  deflate.HWConfig // for OpCompress (zero value = paper config)
	// Length is the record length in bytes: the TLS payload length, or
	// the input byte count for (de)compression.
	Length int
}

// marshalContext serializes the context for transmission over the MMIO
// window (the Config Memory bytes of §IV-C).
func marshalContext(ctx *OffloadContext) ([]byte, error) {
	switch ctx.Op {
	case OpTLSEncrypt, OpTLSDecrypt:
		t := ctx.TLS
		if t == nil {
			return nil, errors.New("core: TLS opcode without TLS context")
		}
		if len(t.Key) > 255 || len(t.IV) > 255 || len(t.AAD) > 255 {
			return nil, errors.New("core: TLS context field too long")
		}
		if len(t.H) != 16 || len(t.EIV) != 16 {
			return nil, errors.New("core: H and EIV must be 16 bytes")
		}
		buf := make([]byte, 0, 8+len(t.Key)+len(t.IV)+32+len(t.AAD))
		buf = append(buf, byte(t.Direction), byte(len(t.Key)), byte(len(t.IV)), byte(len(t.AAD)))
		var lenb [4]byte
		binary.LittleEndian.PutUint32(lenb[:], uint32(t.PayloadLen))
		buf = append(buf, lenb[:]...)
		buf = append(buf, t.Key...)
		buf = append(buf, t.IV...)
		buf = append(buf, t.H...)
		buf = append(buf, t.EIV...)
		buf = append(buf, t.AAD...)
		return buf, nil
	case OpCompress:
		var b [20]byte
		binary.LittleEndian.PutUint32(b[0:], uint32(ctx.HW.ParallelWindow))
		binary.LittleEndian.PutUint32(b[4:], uint32(ctx.HW.Banks))
		binary.LittleEndian.PutUint32(b[8:], uint32(ctx.HW.PortsPerBank))
		binary.LittleEndian.PutUint32(b[12:], uint32(ctx.HW.WindowSize))
		binary.LittleEndian.PutUint32(b[16:], uint32(ctx.HW.TableEntries))
		return b[:], nil
	case OpDecompress:
		return nil, nil
	default:
		return nil, fmt.Errorf("core: cannot marshal context for %v", ctx.Op)
	}
}

// buildDSA deserializes the context bytes and instantiates the record's
// DSA, as the device does once registration completes.
func buildDSA(op Opcode, length int, raw []byte) (dsaInstance, error) {
	switch op {
	case OpTLSEncrypt, OpTLSDecrypt:
		if len(raw) < 8 {
			return nil, errors.New("core: TLS context truncated")
		}
		dir := aesgcm.Direction(raw[0])
		keyLen, ivLen, aadLen := int(raw[1]), int(raw[2]), int(raw[3])
		payloadLen := int(binary.LittleEndian.Uint32(raw[4:8]))
		need := 8 + keyLen + ivLen + 32 + aadLen
		if len(raw) < need {
			return nil, fmt.Errorf("core: TLS context short: %d < %d", len(raw), need)
		}
		p := raw[8:]
		ctx := TLSContext{
			Direction:  dir,
			Key:        p[:keyLen],
			IV:         p[keyLen : keyLen+ivLen],
			H:          p[keyLen+ivLen : keyLen+ivLen+16],
			EIV:        p[keyLen+ivLen+16 : keyLen+ivLen+32],
			AAD:        p[keyLen+ivLen+32 : keyLen+ivLen+32+aadLen],
			PayloadLen: payloadLen,
		}
		if payloadLen+TagSize != length {
			return nil, fmt.Errorf("core: TLS payload %d + tag != record length %d", payloadLen, length)
		}
		return newTLSDSA(ctx)
	case OpCompress:
		var cfg deflate.HWConfig
		if len(raw) >= 20 {
			cfg = deflate.HWConfig{
				ParallelWindow: int(binary.LittleEndian.Uint32(raw[0:])),
				Banks:          int(binary.LittleEndian.Uint32(raw[4:])),
				PortsPerBank:   int(binary.LittleEndian.Uint32(raw[8:])),
				WindowSize:     int(binary.LittleEndian.Uint32(raw[12:])),
				TableEntries:   int(binary.LittleEndian.Uint32(raw[16:])),
			}
		}
		if cfg.ParallelWindow == 0 {
			cfg = deflate.PaperHWConfig()
		}
		return newDeflateDSA(length, cfg)
	case OpDecompress:
		return newInflateDSA(length)
	default:
		return nil, fmt.Errorf("core: unknown opcode %v", op)
	}
}
