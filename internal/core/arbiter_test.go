package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/aesgcm"
	"repro/internal/dram"
)

// rawDevice drives a Device through bare DDR commands, bypassing the
// memory controller, to pin down the arbiter's Fig. 6 states.
type rawDevice struct {
	t   *testing.T
	dev *Device
}

func newRawDevice(t *testing.T) *rawDevice {
	t.Helper()
	dev, err := NewDevice(PaperDeviceConfig(dram.SmallGeometry()))
	if err != nil {
		t.Fatal(err)
	}
	return &rawDevice{t: t, dev: dev}
}

// cmdFor decodes phys into an activated command of the given kind.
func (r *rawDevice) cmdFor(kind dram.CommandKind, phys uint64) dram.Command {
	cmd, err := r.dev.Mapper().Decode(phys)
	if err != nil {
		r.t.Fatal(err)
	}
	cmd.Kind = kind
	return cmd
}

// open activates the row containing phys (precharging first if needed).
func (r *rawDevice) open(cycle int64, phys uint64) {
	cmd := r.cmdFor(dram.CmdACT, phys)
	idx := r.dev.Mapper().BankIndex(cmd.Rank, cmd.BG, cmd.BA)
	if r.dev.bank[idx] != -1 {
		pre := cmd
		pre.Kind = dram.CmdPRE
		if _, err := r.dev.HandleCommand(cycle, pre, nil, nil); err != nil {
			r.t.Fatal(err)
		}
	}
	if _, err := r.dev.HandleCommand(cycle, cmd, nil, nil); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rawDevice) write(cycle int64, phys uint64, data []byte) (alert bool) {
	r.open(cycle, phys)
	alert, err := r.dev.HandleCommand(cycle, r.cmdFor(dram.CmdWr, phys), data, nil)
	if err != nil {
		r.t.Fatal(err)
	}
	return alert
}

func (r *rawDevice) read(cycle int64, phys uint64, dst []byte) (alert bool) {
	r.open(cycle, phys)
	alert, err := r.dev.HandleCommand(cycle, r.cmdFor(dram.CmdRd, phys), nil, dst)
	if err != nil {
		r.t.Fatal(err)
	}
	return alert
}

// registerTLS registers a one-page TLS encrypt offload directly via MMIO
// writes and returns (sbufPage, dbufPage) physical bases.
func (r *rawDevice) registerTLS(cycle int64, payloadLen int, key, iv []byte) (uint64, uint64) {
	r.t.Helper()
	g, err := aesgcm.NewGCM(key)
	if err != nil {
		r.t.Fatal(err)
	}
	eiv, err := g.EIV(iv)
	if err != nil {
		r.t.Fatal(err)
	}
	ctx := &OffloadContext{
		Op: OpTLSEncrypt,
		TLS: &TLSContext{Direction: aesgcm.Encrypt, Key: key, IV: iv,
			H: g.H(), EIV: eiv, PayloadLen: payloadLen},
		Length: payloadLen,
	}
	raw, err := marshalContext(ctx)
	if err != nil {
		r.t.Fatal(err)
	}
	const sbufPage, dbufPage = 4, 8
	var hdr [64]byte
	binary.LittleEndian.PutUint16(hdr[0:], regMagic)
	hdr[2] = byte(OpTLSEncrypt)
	binary.LittleEndian.PutUint16(hdr[4:], uint16(len(raw)))
	binary.LittleEndian.PutUint16(hdr[6:], 0)
	binary.LittleEndian.PutUint64(hdr[8:], sbufPage)
	binary.LittleEndian.PutUint64(hdr[16:], dbufPage)
	binary.LittleEndian.PutUint32(hdr[24:], uint32(payloadLen+TagSize))
	binary.LittleEndian.PutUint64(hdr[28:], sbufPage)
	if alert := r.write(cycle, r.dev.MMIOBase(), hdr[:]); alert {
		r.t.Fatal("MMIO write alerted")
	}
	for off := 0; off < len(raw); off += 64 {
		var chunk [64]byte
		copy(chunk[:], raw[off:])
		k := off / 64
		r.write(cycle, r.dev.MMIOBase()+uint64(k+1)*64, chunk[:])
	}
	return sbufPage * PageSize, dbufPage * PageSize
}

func TestArbiterS13AlertOnPendingRead(t *testing.T) {
	r := newRawDevice(t)
	key := []byte("0123456789abcdef")
	iv := []byte("abcdefghijkl")
	payload := bytes.Repeat([]byte{7}, 64)
	// Stage the source line in DRAM first (before registration, so the
	// write passes through).
	_, _ = r.dev, payload
	sbuf, dbuf := r.registerTLS(0, 64, key, iv)
	// The destination is entirely pending: a read must assert ALERT_N.
	var line [64]byte
	if alert := r.read(10, dbuf, line[:]); !alert {
		t.Fatal("read of pending destination line did not assert ALERT_N (S13)")
	}
	if r.dev.Stats().Alerts == 0 {
		t.Fatal("alert not counted")
	}
	// Feed the source line; result becomes ready after DSALatencyCycles.
	r.write(10, sbuf, payload) // source write passes through (chips)
	if alert := r.read(11, sbuf, line[:]); alert {
		t.Fatal("source read alerted")
	}
	if r.dev.Stats().DSALinesFed != 1 {
		t.Fatalf("DSA fed %d lines", r.dev.Stats().DSALinesFed)
	}
	// Immediately after the feed the result is still in the pipeline:
	// S13 again.
	if alert := r.read(12, dbuf, line[:]); !alert {
		t.Fatal("read before DSA latency elapsed did not alert")
	}
	// After the latency: S10 serves from the scratchpad.
	lat := PaperDeviceConfig(dram.SmallGeometry()).DSALatencyCycles
	if alert := r.read(12+lat, dbuf, line[:]); alert {
		t.Fatal("ready line still alerting")
	}
	if r.dev.Stats().ScratchpadReads != 1 {
		t.Fatalf("S10 reads = %d, want 1", r.dev.Stats().ScratchpadReads)
	}
	// The served data is the ciphertext.
	g, _ := aesgcm.NewGCM(key)
	want, _ := g.Seal(nil, iv, payload, nil)
	if !bytes.Equal(line[:], want[:64]) {
		t.Fatal("S10 data is not the DSA output")
	}
}

func TestArbiterS7IgnoredWriteThenSwap(t *testing.T) {
	r := newRawDevice(t)
	key := []byte("0123456789abcdef")
	iv := []byte("abcdefghijkl")
	payload := bytes.Repeat([]byte{9}, 64)
	sbuf, dbuf := r.registerTLS(0, 64, key, iv)
	r.write(0, sbuf, payload)
	var line [64]byte
	r.read(1, sbuf, line[:]) // feed the DSA at cycle 1

	// A writeback arriving before readyAt (cycle 1 + 32) is ignored (S7).
	stale := bytes.Repeat([]byte{0xAA}, 64)
	if alert := r.write(2, dbuf, stale); alert {
		t.Fatal("S7 write alerted")
	}
	if r.dev.Stats().IgnoredWrites != 1 {
		t.Fatalf("S7 ignored writes = %d, want 1", r.dev.Stats().IgnoredWrites)
	}
	if r.dev.Stats().SelfRecycles != 0 {
		t.Fatal("premature recycle")
	}
	// After the DSA latency the same writeback self-recycles: the DRAM
	// receives the DSA output, not the CPU's stale data.
	if alert := r.write(100, dbuf, stale); alert {
		t.Fatal("recycle write alerted")
	}
	if r.dev.Stats().SelfRecycles != 1 {
		t.Fatalf("self recycles = %d, want 1", r.dev.Stats().SelfRecycles)
	}
	r.read(200, dbuf, line[:])
	g, _ := aesgcm.NewGCM(key)
	want, _ := g.Seal(nil, iv, payload, nil)
	if !bytes.Equal(line[:], want[:64]) {
		t.Fatal("DRAM holds stale data instead of the DSA output after swap")
	}
}

func TestArbiterSourceWritePassesThrough(t *testing.T) {
	r := newRawDevice(t)
	sbuf, _ := r.registerTLS(0, 64, []byte("0123456789abcdef"), []byte("abcdefghijkl"))
	data := bytes.Repeat([]byte{3}, 64)
	r.write(0, sbuf, data)
	if r.dev.Stats().SourceWrites != 1 {
		t.Fatalf("source writes = %d", r.dev.Stats().SourceWrites)
	}
	var line [64]byte
	r.read(1, sbuf, line[:])
	if !bytes.Equal(line[:], data) {
		t.Fatal("source write did not reach DRAM")
	}
}

func TestMMIOStatusAndPendingList(t *testing.T) {
	r := newRawDevice(t)
	_, dbuf := r.registerTLS(0, 64, []byte("0123456789abcdef"), []byte("abcdefghijkl"))
	var status [64]byte
	r.read(1, r.dev.MMIOBase(), status[:])
	free := binary.LittleEndian.Uint64(status[0:])
	pending := binary.LittleEndian.Uint64(status[8:])
	if free != 2047 || pending != 1 {
		t.Fatalf("status free=%d pending=%d, want 2047/1", free, pending)
	}
	var list [64]byte
	r.read(2, r.dev.MMIOBase()+64, list[:])
	if got := binary.LittleEndian.Uint64(list[0:]); got != dbuf/PageSize {
		t.Fatalf("pending list[0] = %d, want %d", got, dbuf/PageSize)
	}
}

func TestMMIORegistrationErrors(t *testing.T) {
	r := newRawDevice(t)
	var hdr [64]byte
	// Bad magic.
	if _, err := r.dev.HandleCommand(0, r.openedWr(r.dev.MMIOBase()), hdr[:], nil); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Valid magic, zero record length.
	binary.LittleEndian.PutUint16(hdr[0:], regMagic)
	hdr[2] = byte(OpCompress)
	if _, err := r.dev.HandleCommand(0, r.openedWr(r.dev.MMIOBase()), hdr[:], nil); err == nil {
		t.Fatal("zero record length accepted")
	}
	// Context write with no registration in flight.
	if _, err := r.dev.HandleCommand(0, r.openedWr(r.dev.MMIOBase()+64), hdr[:], nil); err == nil {
		t.Fatal("orphan context write accepted")
	}
	// Page referencing an unknown record.
	binary.LittleEndian.PutUint16(hdr[6:], 1)      // pageIndex 1
	binary.LittleEndian.PutUint64(hdr[28:], 0x999) // unknown ctx page
	binary.LittleEndian.PutUint32(hdr[24:], 4096)
	if _, err := r.dev.HandleCommand(0, r.openedWr(r.dev.MMIOBase()), hdr[:], nil); err == nil {
		t.Fatal("unknown record reference accepted")
	}
}

// openedWr opens the row for phys and returns the write command.
func (r *rawDevice) openedWr(phys uint64) dram.Command {
	r.open(0, phys)
	return r.cmdFor(dram.CmdWr, phys)
}

func TestBankTableDisagreementDetected(t *testing.T) {
	r := newRawDevice(t)
	r.open(0, 0)
	cmd := r.cmdFor(dram.CmdRd, 0)
	cmd.Row = 5 // controller claims a different row than the bank table
	var line [64]byte
	if _, err := r.dev.HandleCommand(0, cmd, nil, line[:]); err == nil {
		t.Fatal("bank table / controller row disagreement not detected")
	}
	// CAS to a precharged bank is also rejected by the bank table.
	pre := r.cmdFor(dram.CmdPRE, 0)
	r.dev.HandleCommand(0, pre, nil, nil)
	rd := r.cmdFor(dram.CmdRd, 0)
	if _, err := r.dev.HandleCommand(0, rd, nil, line[:]); err == nil {
		t.Fatal("CAS to precharged bank accepted")
	}
}

func TestBufferCycleClock(t *testing.T) {
	r := newRawDevice(t)
	var line [64]byte
	r.read(400, 0, line[:])
	if got := r.dev.Stats().BufferCycles; got != 100 {
		t.Fatalf("buffer cycles = %d, want 100 (1/4 of DRAM clock)", got)
	}
}

func TestDestCoverage(t *testing.T) {
	cases := []struct {
		op       Opcode
		len, idx int
		want     int
	}{
		{OpTLSEncrypt, 4112, 0, 4096},
		{OpTLSEncrypt, 4112, 1, 16},
		{OpTLSEncrypt, 100, 0, 100},
		{OpTLSEncrypt, 4096, 1, 0},
		{OpCompress, 2000, 0, PageSize},
		{OpDecompress, 4096, 0, PageSize},
	}
	for _, c := range cases {
		if got := destCoverage(c.op, c.len, c.idx); got != c.want {
			t.Errorf("destCoverage(%v,%d,%d) = %d, want %d", c.op, c.len, c.idx, got, c.want)
		}
	}
}

func TestMarshalContextErrors(t *testing.T) {
	if _, err := marshalContext(&OffloadContext{Op: OpTLSEncrypt}); err == nil {
		t.Fatal("TLS opcode without context accepted")
	}
	if _, err := marshalContext(&OffloadContext{Op: OpNone}); err == nil {
		t.Fatal("OpNone accepted")
	}
	bad := &OffloadContext{Op: OpTLSEncrypt, TLS: &TLSContext{
		Key: make([]byte, 16), IV: make([]byte, 12), H: make([]byte, 8), EIV: make([]byte, 16),
	}}
	if _, err := marshalContext(bad); err == nil {
		t.Fatal("short H accepted")
	}
}

func TestBuildDSAErrors(t *testing.T) {
	if _, err := buildDSA(OpTLSEncrypt, 100, []byte{1, 2}); err == nil {
		t.Fatal("truncated TLS context accepted")
	}
	if _, err := buildDSA(Opcode(99), 100, nil); err == nil {
		t.Fatal("unknown opcode accepted")
	}
	if _, err := buildDSA(OpCompress, PageSize+1, nil); err == nil {
		t.Fatal("oversized compress accepted")
	}
	if _, err := buildDSA(OpDecompress, 0, nil); err == nil {
		t.Fatal("zero-length decompress accepted")
	}
}
