package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/aesgcm"
	"repro/internal/cache"
	"repro/internal/corpus"
	"repro/internal/deflate"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/memsys"
)

// rig is a complete single-channel SmartDIMM system for tests.
type rig struct {
	dev    *Device
	hier   *memsys.Hierarchy
	driver *Driver
}

// newRig builds a system with the given LLC size (small LLCs create the
// contention that exercises self-recycling).
func newRig(t testing.TB, llcBytes int, llcWays int) *rig {
	t.Helper()
	dev, err := NewDevice(PaperDeviceConfig(dram.SmallGeometry()))
	if err != nil {
		t.Fatal(err)
	}
	llc := cache.MustNew(cache.Config{SizeBytes: llcBytes, Ways: llcWays,
		WayMask: [2]uint64{cache.ClassDMA: 0b11}})
	ctl := memctrl.New(memctrl.DefaultConfig(), dev)
	hier, err := memsys.New(llc, memsys.Channel{Ctl: ctl, Mod: dev})
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(hier, 0, dram.SmallGeometry().CapacityBytes(), 1)
	return &rig{dev: dev, hier: hier, driver: drv}
}

// tlsOffloadContext builds the context the OpenSSL engine would supply.
func tlsOffloadContext(t testing.TB, dir aesgcm.Direction, key, iv, aad []byte, payloadLen int) *OffloadContext {
	t.Helper()
	g, err := aesgcm.NewGCM(key)
	if err != nil {
		t.Fatal(err)
	}
	eiv, err := g.EIV(iv)
	if err != nil {
		t.Fatal(err)
	}
	return &OffloadContext{
		Op: map[aesgcm.Direction]Opcode{aesgcm.Encrypt: OpTLSEncrypt, aesgcm.Decrypt: OpTLSDecrypt}[dir],
		TLS: &TLSContext{
			Direction: dir, Key: key, IV: iv, H: g.H(), EIV: eiv, AAD: aad,
			PayloadLen: payloadLen,
		},
		Length: payloadLen,
	}
}

// runTLSEncrypt performs a full TLS encryption offload and returns the
// record (ciphertext || tag).
func runTLSEncrypt(t testing.TB, r *rig, key, iv, aad, plaintext []byte) []byte {
	t.Helper()
	recordLen := len(plaintext) + TagSize
	nPages := (recordLen + PageSize - 1) / PageSize
	sbuf, err := r.driver.AllocPages(nPages)
	if err != nil {
		t.Fatal(err)
	}
	dbuf, err := r.driver.AllocPages(nPages)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, nPages*PageSize)
	copy(src, plaintext)
	if _, err := r.driver.WriteBuffer(0, sbuf, src); err != nil {
		t.Fatal(err)
	}
	ctx := tlsOffloadContext(t, aesgcm.Encrypt, key, iv, aad, len(plaintext))
	if _, err := r.driver.CompCpy(0, dbuf, sbuf, recordLen, ctx, false); err != nil {
		t.Fatal(err)
	}
	out, _, err := r.driver.Use(0, dbuf, recordLen)
	if err != nil {
		t.Fatal(err)
	}
	r.driver.FreePages(sbuf, nPages)
	r.driver.FreePages(dbuf, nPages)
	return out
}

func TestTLSEncryptOffloadMatchesReference(t *testing.T) {
	key := []byte("0123456789abcdef")
	iv := []byte("abcdefghijkl")
	aad := []byte{0x17, 0x03, 0x03, 0x10, 0x00}
	for _, size := range []int{100, 4096 - TagSize, 4096, 5000, 16384 - TagSize} {
		r := newRig(t, 256*1024, 8)
		pt := corpus.Generate(corpus.Text, size, int64(size))
		got := runTLSEncrypt(t, r, key, iv, aad, pt)

		g, _ := aesgcm.NewGCM(key)
		want, _ := g.Seal(nil, iv, pt, aad)
		if !bytes.Equal(got[:size], want[:size]) {
			t.Fatalf("size %d: ciphertext mismatch", size)
		}
		if !bytes.Equal(got[size:size+TagSize], want[size:]) {
			t.Fatalf("size %d: tag mismatch: %x vs %x", size, got[size:size+TagSize], want[size:])
		}
		st := r.dev.Stats()
		if st.SourceReads == 0 || st.DSALinesFed == 0 {
			t.Fatalf("size %d: DSA never fed: %+v", size, st)
		}
		if st.SelfRecycles == 0 {
			t.Fatalf("size %d: no self-recycles happened", size)
		}
		if st.DSAErrors != 0 || st.AuthFailures != 0 {
			t.Fatalf("size %d: device errors: %+v", size, st)
		}
	}
}

func TestTLSDecryptOffloadRoundTrip(t *testing.T) {
	key := []byte("0123456789abcdefghijklmnopqrstuv")
	iv := []byte("abcdefghijkl")
	aad := []byte("hdr")
	size := 6000
	pt := corpus.Generate(corpus.HTML, size, 1)
	g, _ := aesgcm.NewGCM(key)
	sealed, _ := g.Seal(nil, iv, pt, aad) // ciphertext || tag

	r := newRig(t, 256*1024, 8)
	recordLen := len(sealed)
	nPages := (recordLen + PageSize - 1) / PageSize
	sbuf, _ := r.driver.AllocPages(nPages)
	dbuf, _ := r.driver.AllocPages(nPages)
	src := make([]byte, nPages*PageSize)
	copy(src, sealed)
	r.driver.WriteBuffer(0, sbuf, src)

	ctx := tlsOffloadContext(t, aesgcm.Decrypt, key, iv, aad, size)
	if _, err := r.driver.CompCpy(0, dbuf, sbuf, recordLen, ctx, false); err != nil {
		t.Fatal(err)
	}
	out, _, err := r.driver.Use(0, dbuf, recordLen)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:size], pt) {
		t.Fatal("decrypted payload mismatch")
	}
	if out[size] != 1 {
		t.Fatal("tag verification marker not set")
	}
	if r.dev.Stats().AuthFailures != 0 {
		t.Fatal("unexpected auth failure")
	}
}

func TestTLSDecryptDetectsTampering(t *testing.T) {
	key := []byte("0123456789abcdef")
	iv := []byte("abcdefghijkl")
	size := 1024
	pt := make([]byte, size)
	g, _ := aesgcm.NewGCM(key)
	sealed, _ := g.Seal(nil, iv, pt, nil)
	sealed[10] ^= 0xFF // corrupt ciphertext

	r := newRig(t, 256*1024, 8)
	nPages := 1
	sbuf, _ := r.driver.AllocPages(nPages)
	dbuf, _ := r.driver.AllocPages(nPages)
	src := make([]byte, PageSize)
	copy(src, sealed)
	r.driver.WriteBuffer(0, sbuf, src)
	ctx := tlsOffloadContext(t, aesgcm.Decrypt, key, iv, nil, size)
	if _, err := r.driver.CompCpy(0, dbuf, sbuf, len(sealed), ctx, false); err != nil {
		t.Fatal(err)
	}
	out, _, _ := r.driver.Use(0, dbuf, len(sealed))
	if out[size] != 0 {
		t.Fatal("tampered record passed verification")
	}
	if r.dev.Stats().AuthFailures != 1 {
		t.Fatalf("auth failures = %d, want 1", r.dev.Stats().AuthFailures)
	}
}

func TestCompressionOffloadRoundTrip(t *testing.T) {
	for _, kind := range []corpus.Kind{corpus.HTML, corpus.Text, corpus.Random, corpus.Zeros} {
		r := newRig(t, 256*1024, 8)
		data := corpus.Generate(kind, MaxCompressInput, 3)
		sbuf, _ := r.driver.AllocPages(1)
		dbuf, _ := r.driver.AllocPages(1)
		r.driver.WriteBuffer(0, sbuf, data)

		ctx := &OffloadContext{Op: OpCompress, Length: MaxCompressInput}
		if _, err := r.driver.CompCpy(0, dbuf, sbuf, PageSize, ctx, true); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		page, _, err := r.driver.Use(0, dbuf, PageSize)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := DecodeCompressedPage(page)
		if err != nil {
			t.Fatalf("%v: decode: %v", kind, err)
		}
		if !bytes.Equal(orig, data) {
			t.Fatalf("%v: round trip mismatch", kind)
		}
		// Compressible kinds must actually shrink.
		n, _ := CompressedPayloadLen(page)
		if kind == corpus.HTML && n >= MaxCompressInput/2 {
			t.Fatalf("html compressed to %d bytes only", n)
		}
		if r.dev.Stats().DSAErrors != 0 {
			t.Fatalf("%v: DSA errors", kind)
		}
	}
}

func TestDecompressionOffloadRoundTrip(t *testing.T) {
	r := newRig(t, 256*1024, 8)
	data := corpus.Generate(corpus.JSON, MaxCompressInput, 5)
	compressed, err := EncodeCompressedPage(data, deflate.NewHWEncoder(deflate.PaperHWConfig()))
	if err != nil {
		t.Fatal(err)
	}

	sbuf, _ := r.driver.AllocPages(1)
	dbuf, _ := r.driver.AllocPages(1)
	r.driver.WriteBuffer(0, sbuf, compressed)
	ctx := &OffloadContext{Op: OpDecompress, Length: PageSize}
	if _, err := r.driver.CompCpy(0, dbuf, sbuf, PageSize, ctx, true); err != nil {
		t.Fatal(err)
	}
	out, _, err := r.driver.Use(0, dbuf, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:len(data)], data) {
		t.Fatal("decompression mismatch")
	}
}

func TestSelfRecycleUnderContention(t *testing.T) {
	// With a tiny LLC, dbuf writebacks happen during the copy itself and
	// recycle scratchpad lines without any Force-Recycle (§VII-A).
	r := newRig(t, 64*1024, 8)
	key := []byte("0123456789abcdef")
	iv := []byte("abcdefghijkl")
	for i := 0; i < 8; i++ {
		pt := corpus.Generate(corpus.Text, 4096-TagSize, int64(i))
		runTLSEncrypt(t, r, key, iv, nil, pt)
	}
	st := r.dev.Stats()
	if st.SelfRecycles == 0 || st.PagesRecycled == 0 {
		t.Fatalf("no recycling: %+v", st)
	}
	if r.driver.Stats().ForceRecycleCalls != 0 {
		t.Fatalf("force-recycle called %d times under contention", r.driver.Stats().ForceRecycleCalls)
	}
	// All pages must be back after Use() flushes.
	if r.dev.ScratchpadFreePages() != PaperDeviceConfig(dram.SmallGeometry()).ScratchpadPages {
		t.Fatalf("scratchpad leaked: %d free", r.dev.ScratchpadFreePages())
	}
}

func TestForceRecycleWhenScratchpadTiny(t *testing.T) {
	// A 4-page scratchpad with a large LLC (no natural writebacks)
	// forces Algorithm 1 to run.
	cfg := PaperDeviceConfig(dram.SmallGeometry())
	cfg.ScratchpadPages = 4
	cfg.ConfigPages = 4
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	llc := cache.MustNew(cache.Config{SizeBytes: 4 << 20, Ways: 8})
	ctl := memctrl.New(memctrl.DefaultConfig(), dev)
	hier, _ := memsys.New(llc, memsys.Channel{Ctl: ctl, Mod: dev})
	drv := NewDriver(hier, 0, dram.SmallGeometry().CapacityBytes(), 1)
	r := &rig{dev: dev, hier: hier, driver: drv}

	key := []byte("0123456789abcdef")
	iv := []byte("abcdefghijkl")
	// Launch more offloads than the scratchpad holds WITHOUT consuming
	// the destinations: the big LLC produces no natural writebacks, so
	// CompCpy must invoke Force-Recycle to find pages.
	type pending struct {
		sbuf, dbuf uint64
		pt         []byte
	}
	var offs []pending
	for i := 0; i < 8; i++ {
		pt := corpus.Generate(corpus.Text, 2048, int64(i))
		sbuf, _ := drv.AllocPages(1)
		dbuf, _ := drv.AllocPages(1)
		src := make([]byte, PageSize)
		copy(src, pt)
		drv.WriteBuffer(0, sbuf, src)
		ctx := tlsOffloadContext(t, aesgcm.Encrypt, key, iv, nil, len(pt))
		if _, err := drv.CompCpy(0, dbuf, sbuf, len(pt)+TagSize, ctx, false); err != nil {
			t.Fatalf("offload %d: %v", i, err)
		}
		offs = append(offs, pending{sbuf, dbuf, pt})
	}
	if drv.Stats().ForceRecycleCalls == 0 {
		t.Fatal("force-recycle never ran with a 4-page scratchpad")
	}
	// The most recent offloads are still pending and must read correctly.
	g, _ := aesgcm.NewGCM(key)
	want, _ := g.Seal(nil, iv, offs[7].pt, nil)
	out, _, err := drv.Use(0, offs[7].dbuf, len(offs[7].pt)+TagSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("corruption after force-recycle")
	}
	_ = r
}

func TestConcurrentOffloadsInterleaved(t *testing.T) {
	// Multiple in-flight records with interleaved copies — the Fig. 9
	// scenario (4 "cores" offloading concurrently).
	r := newRig(t, 128*1024, 8)
	key := []byte("0123456789abcdef")
	const n = 4
	type off struct {
		sbuf, dbuf uint64
		pt         []byte
		iv         []byte
	}
	var offs [n]off
	for i := range offs {
		pt := corpus.Generate(corpus.Text, 4096-TagSize, int64(i))
		iv := []byte{byte(i), 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
		sbuf, _ := r.driver.AllocPages(1)
		dbuf, _ := r.driver.AllocPages(1)
		src := make([]byte, PageSize)
		copy(src, pt)
		r.driver.WriteBuffer(i, sbuf, src)
		offs[i] = off{sbuf, dbuf, pt, iv}
	}
	// Register all, then interleave... CompCpy performs its own copy, so
	// "interleaving" here means running them back to back with shared
	// device state while earlier destinations are still un-recycled.
	for i := range offs {
		ctx := tlsOffloadContext(t, aesgcm.Encrypt, key, offs[i].iv, nil, len(offs[i].pt))
		if _, err := r.driver.CompCpy(i, offs[i].dbuf, offs[i].sbuf, PageSize, ctx, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := range offs {
		out, _, err := r.driver.Use(i, offs[i].dbuf, PageSize)
		if err != nil {
			t.Fatal(err)
		}
		g, _ := aesgcm.NewGCM(key)
		want, _ := g.Seal(nil, offs[i].iv, offs[i].pt, nil)
		if !bytes.Equal(out[:len(want)], want) {
			t.Fatalf("offload %d corrupted", i)
		}
	}
}

func TestNonAcceleratedTrafficUntouched(t *testing.T) {
	// R2: SmartDIMM must behave as a plain DIMM outside acceleration
	// ranges, even while offloads are in flight.
	r := newRig(t, 128*1024, 8)
	plain := uint64(2 << 20)
	want := corpus.Generate(corpus.Random, PageSize, 9)
	r.driver.WriteBuffer(0, plain, want)
	r.hier.Flush(plain, PageSize)

	key := []byte("0123456789abcdef")
	runTLSEncrypt(t, r, key, []byte("abcdefghijkl"), nil, corpus.Generate(corpus.Text, 2000, 1))

	got := make([]byte, 0, PageSize)
	var line [64]byte
	for off := 0; off < PageSize; off += 64 {
		r.hier.Read64(0, plain+uint64(off), line[:])
		got = append(got, line[:]...)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("plain traffic corrupted by in-flight offload")
	}
}

func TestCompCpyValidation(t *testing.T) {
	r := newRig(t, 128*1024, 8)
	ctx := &OffloadContext{Op: OpCompress, Length: PageSize}
	if _, err := r.driver.CompCpy(0, 100, 0, PageSize, ctx, true); err != ErrNotAligned {
		t.Fatalf("unaligned dbuf: %v", err)
	}
	if _, err := r.driver.CompCpy(0, 0, 100, PageSize, ctx, true); err != ErrNotAligned {
		t.Fatalf("unaligned sbuf: %v", err)
	}
	if _, err := r.driver.CompCpy(0, 0, PageSize, 0, ctx, true); err == nil {
		t.Fatal("zero size accepted")
	}
	// TLS record larger than CompCpy size rejected.
	tctx := tlsOffloadContext(t, aesgcm.Encrypt, []byte("0123456789abcdef"), []byte("abcdefghijkl"), nil, PageSize)
	if _, err := r.driver.CompCpy(0, 0, PageSize, PageSize, tctx, false); err == nil {
		t.Fatal("record exceeding size accepted")
	}
}

func TestDriverAllocator(t *testing.T) {
	r := newRig(t, 128*1024, 8)
	a, err := r.driver.AllocPages(2)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := r.driver.AllocPages(2)
	if a == b {
		t.Fatal("duplicate allocation")
	}
	if a%PageSize != 0 || b%PageSize != 0 {
		t.Fatal("unaligned allocation")
	}
	r.driver.FreePages(a, 2)
	c, _ := r.driver.AllocPages(2)
	if c != a {
		t.Fatalf("free list not reused: %#x vs %#x", c, a)
	}
	if _, err := r.driver.AllocPages(0); err == nil {
		t.Fatal("zero-page alloc accepted")
	}
}

func TestMMIOStatusReflectsScratchpad(t *testing.T) {
	r := newRig(t, 4<<20, 8) // big LLC: pages stay pending until Use
	free0, pend0, err := r.driver.readStatus()
	if err != nil {
		t.Fatal(err)
	}
	if free0 != 2048 || pend0 != 0 {
		t.Fatalf("initial status %d/%d", free0, pend0)
	}
	sbuf, _ := r.driver.AllocPages(1)
	dbuf, _ := r.driver.AllocPages(1)
	r.driver.WriteBuffer(0, sbuf, corpus.Generate(corpus.Text, MaxCompressInput, 1))
	ctx := &OffloadContext{Op: OpCompress, Length: MaxCompressInput}
	if _, err := r.driver.CompCpy(0, dbuf, sbuf, PageSize, ctx, true); err != nil {
		t.Fatal(err)
	}
	free1, pend1, _ := r.driver.readStatus()
	if free1 != 2047 || pend1 != 1 {
		t.Fatalf("status after offload %d/%d, want 2047/1", free1, pend1)
	}
	r.driver.Use(0, dbuf, PageSize)
	free2, pend2, _ := r.driver.readStatus()
	if free2 != 2048 || pend2 != 0 {
		t.Fatalf("status after use %d/%d, want 2048/0", free2, pend2)
	}
}

func TestReRegistrationEvictsStaleAllocation(t *testing.T) {
	r := newRig(t, 4<<20, 8) // big LLC so the first record stays live
	sbuf, _ := r.driver.AllocPages(1)
	dbuf, _ := r.driver.AllocPages(1)
	data := corpus.Generate(corpus.Text, MaxCompressInput, 21)
	r.driver.WriteBuffer(0, sbuf, data)
	ctx := &OffloadContext{Op: OpCompress, Length: MaxCompressInput}
	if _, err := r.driver.CompCpy(0, dbuf, sbuf, PageSize, ctx, true); err != nil {
		t.Fatal(err)
	}
	// Reusing the buffers while the old record is still un-recycled
	// implicitly retires the stale allocation (buffer reuse = consent).
	data2 := corpus.Generate(corpus.Text, MaxCompressInput, 22)
	r.driver.WriteBuffer(0, sbuf, data2)
	if _, err := r.driver.CompCpy(0, dbuf, sbuf, PageSize, ctx, true); err != nil {
		t.Fatalf("re-registration failed: %v", err)
	}
	if r.dev.Stats().StaleEvictions == 0 {
		t.Fatal("stale eviction not counted")
	}
	page, _, err := r.driver.Use(0, dbuf, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := DecodeCompressedPage(page)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, data2) {
		t.Fatal("second offload corrupted after stale eviction")
	}
	// No leaks: scratchpad fully free after Use.
	if free := r.dev.ScratchpadFreePages(); free != 2048 {
		t.Fatalf("scratchpad free = %d, want 2048", free)
	}
}

func TestOpcodeString(t *testing.T) {
	for op, want := range map[Opcode]string{
		OpNone: "none", OpTLSEncrypt: "tls-encrypt", OpTLSDecrypt: "tls-decrypt",
		OpCompress: "compress", OpDecompress: "decompress",
	} {
		if op.String() != want {
			t.Errorf("%d = %q", op, op.String())
		}
	}
}

func TestCompressedPageFormat(t *testing.T) {
	enc := deflate.NewHWEncoder(deflate.PaperHWConfig())
	// Compressible data: deflate payload.
	data := bytes.Repeat([]byte("abcd"), 1023)
	page, err := EncodeCompressedPage(data, enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != PageSize {
		t.Fatal("page size wrong")
	}
	out, err := DecodeCompressedPage(page)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatal("compressible round trip failed")
	}
	// Incompressible data: raw fallback at the maximum input size.
	rnd := make([]byte, MaxCompressInput)
	rand.New(rand.NewSource(1)).Read(rnd)
	page, err = EncodeCompressedPage(rnd, enc)
	if err != nil {
		t.Fatal(err)
	}
	out, err = DecodeCompressedPage(page)
	if err != nil || !bytes.Equal(out, rnd) {
		t.Fatal("raw fallback round trip failed")
	}
	// Oversized input is rejected with an error, not a panic.
	if _, err := EncodeCompressedPage(make([]byte, PageSize), enc); err == nil {
		t.Error("oversized compression input accepted")
	}
	// Corrupt header rejected.
	if _, err := DecodeCompressedPage([]byte{1}); err == nil {
		t.Fatal("short page accepted")
	}
	bad := make([]byte, 64)
	bad[0] = 0xFF
	bad[1] = 0xFF
	bad[2] = 0xFF
	if _, err := DecodeCompressedPage(bad); err == nil {
		t.Fatal("overrun length accepted")
	}
}

func TestDeviceConfigValidation(t *testing.T) {
	if _, err := NewDevice(DeviceConfig{Geometry: dram.SmallGeometry()}); err == nil {
		t.Fatal("zero scratchpad accepted")
	}
	bad := PaperDeviceConfig(dram.Geometry{Ranks: 3, BankGroups: 4, BanksPerBG: 4, Rows: 16, ColsPerRow: 16})
	if _, err := NewDevice(bad); err == nil {
		t.Fatal("bad geometry accepted")
	}
}

func TestTranslationTableStaysHealthy(t *testing.T) {
	r := newRig(t, 64*1024, 8)
	key := []byte("0123456789abcdef")
	for i := 0; i < 20; i++ {
		pt := corpus.Generate(corpus.Text, 3000, int64(i))
		runTLSEncrypt(t, r, key, []byte("abcdefghijkl"), nil, pt)
	}
	ts := r.dev.TranslationStats()
	if ts.FailedInserts != 0 {
		t.Fatalf("translation insert failures: %+v", ts)
	}
	if ts.Inserts == 0 || ts.Deletes == 0 {
		t.Fatalf("translation table unused: %+v", ts)
	}
}
