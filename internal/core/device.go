package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cuckoo"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// regMagic marks a valid MMIO registration header.
const regMagic = 0x5D1A

// opAbort is the registration-header op byte that tears down an
// in-flight record instead of starting one (driver-initiated abort after
// a failed CompCpy).
const opAbort = 0xFF

// DeviceConfig sizes the buffer device. The zero value is invalid; use
// PaperDeviceConfig (8MB Scratchpad, 8MB Config Memory, 12288-entry
// Translation Table — §VI) or override fields for ablations.
type DeviceConfig struct {
	Geometry        dram.Geometry
	ScratchpadPages int
	ConfigPages     int
	// DSALatencyCycles is the DRAM-cycle latency from a source rdCAS to
	// the corresponding result being ready in the Scratchpad. The §IV-D
	// slack argument needs this well under the controller's read-to-write
	// gap; the TLS DSA sustains DDR line rate, so a handful of buffer
	// clock cycles (= 4 DRAM cycles each) suffices.
	DSALatencyCycles int64
	// MMIOPages reserves the top of the address range as config space.
	MMIOPages int
}

// PaperDeviceConfig returns the §VI configuration over the given
// geometry: 2048 Scratchpad pages (8MB), 2048 Config Memory pages (8MB).
func PaperDeviceConfig(geo dram.Geometry) DeviceConfig {
	return DeviceConfig{
		Geometry:         geo,
		ScratchpadPages:  2048,
		ConfigPages:      2048,
		DSALatencyCycles: 32, // 8 buffer-device cycles
		MMIOPages:        1,
	}
}

// DeviceStats counts arbiter outcomes, keyed to the Fig. 6 states.
type DeviceStats struct {
	Registrations   uint64
	SourceReads     uint64 // rdCAS in a source acceleration range (S6)
	DSALinesFed     uint64
	SelfRecycles    uint64 // wrCAS swapped with Scratchpad data (§IV-B)
	PagesRecycled   uint64 // Scratchpad pages fully freed
	IgnoredWrites   uint64 // S7: write while computation pending
	ScratchpadReads uint64 // S10: read served from Scratchpad
	Alerts          uint64 // S13: ALERT_N asserted
	SourceWrites    uint64 // writes into a registered source range
	NormalReads     uint64
	NormalWrites    uint64
	MMIOReads       uint64
	MMIOWrites      uint64
	AuthFailures    uint64 // TLS decrypt tag verification failures
	StaleEvictions  uint64 // re-registrations that retired a stale allocation
	DSAErrors       uint64
	RecordAborts    uint64 // records torn down after a DSA fault or abort op
	BufferCycles    int64 // buffer-device clock (1/4 DRAM clock) high-water
}

// Device is the SmartDIMM buffer device: a dram.Module interposed
// between the memory controller and the DRAM chips.
type Device struct {
	cfg      DeviceConfig
	chips    *dram.Chips
	mapper   *dram.Mapper
	bank     []int32 // the buffer device's own Bank Table (§IV-C)
	tt       *cuckoo.Table[*translation]
	sp       *scratchpad
	cm       *configMem
	mmioBase uint64
	// reg is the in-flight registration awaiting context bytes; the
	// CompCpy lock serializes registrations so a single cursor suffices.
	reg   *regState
	stats DeviceStats
	// records maps the record's first source page to its record for
	// multi-page attach.
	records map[uint64]*record
	// Faults, when non-nil, injects device-side faults: "core.alert"
	// (spurious ALERT_N on a data read), "core.dsa" (DSA processing
	// fault, aborting the record), and "core.ttinsert" (Translation
	// Table insert failure during registration).
	Faults *fault.Injector
	// Tracer, when non-nil, records arbiter instants (page recycles,
	// record aborts) on TraceTrack. TraceCycPs converts the device's
	// DRAM-cycle clock to picoseconds (the controller's tCK); the
	// per-cacheline S6/S10 paths are never instrumented.
	Tracer     *telemetry.Tracer
	TraceTrack telemetry.TrackID
	TraceCycPs int64
	lastCycle  int64
}

type regState struct {
	rec     *record
	ctxLen  int
	rx      int
	cfgIdx  int
	srcPage uint64
}

// NewDevice builds a SmartDIMM over fresh DRAM chips.
func NewDevice(cfg DeviceConfig) (*Device, error) {
	if cfg.ScratchpadPages <= 0 || cfg.ConfigPages <= 0 {
		return nil, fmt.Errorf("core: scratchpad/config pages must be positive")
	}
	if cfg.MMIOPages <= 0 {
		cfg.MMIOPages = 1
	}
	chips, err := dram.NewChips(cfg.Geometry)
	if err != nil {
		return nil, err
	}
	d := &Device{
		cfg:     cfg,
		chips:   chips,
		mapper:  chips.Mapper(),
		bank:    make([]int32, cfg.Geometry.TotalBanks()),
		tt:      cuckoo.New[*translation](3*(cfg.ScratchpadPages+cfg.ConfigPages), cuckoo.DefaultWays, cuckoo.DefaultCAMEntries),
		sp:      newScratchpad(cfg.ScratchpadPages),
		cm:      newConfigMem(cfg.ConfigPages),
		records: make(map[uint64]*record),
	}
	for i := range d.bank {
		d.bank[i] = -1
	}
	cap := cfg.Geometry.CapacityBytes()
	d.mmioBase = cap - uint64(cfg.MMIOPages)*PageSize
	return d, nil
}

// Mapper implements dram.Module.
func (d *Device) Mapper() *dram.Mapper { return d.mapper }

// MMIOBase returns the channel-local base address of the config space.
func (d *Device) MMIOBase() uint64 { return d.mmioBase }

// Stats returns a copy of the arbiter statistics.
func (d *Device) Stats() DeviceStats { return d.stats }

// Collect implements telemetry.Collector.
func (s DeviceStats) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "registrations", Value: float64(s.Registrations)})
	emit(telemetry.Sample{Name: "source_reads", Value: float64(s.SourceReads)})
	emit(telemetry.Sample{Name: "dsa_lines_fed", Value: float64(s.DSALinesFed)})
	emit(telemetry.Sample{Name: "self_recycles", Value: float64(s.SelfRecycles)})
	emit(telemetry.Sample{Name: "pages_recycled", Value: float64(s.PagesRecycled)})
	emit(telemetry.Sample{Name: "ignored_writes", Value: float64(s.IgnoredWrites)})
	emit(telemetry.Sample{Name: "scratchpad_reads", Value: float64(s.ScratchpadReads)})
	emit(telemetry.Sample{Name: "alerts", Value: float64(s.Alerts)})
	emit(telemetry.Sample{Name: "auth_failures", Value: float64(s.AuthFailures)})
	emit(telemetry.Sample{Name: "stale_evictions", Value: float64(s.StaleEvictions)})
	emit(telemetry.Sample{Name: "dsa_errors", Value: float64(s.DSAErrors)})
	emit(telemetry.Sample{Name: "record_aborts", Value: float64(s.RecordAborts)})
}

// traceInstant timestamps an arbiter event with the last command cycle.
func (d *Device) traceInstant(name string) {
	d.Tracer.Instant(d.TraceTrack, name, d.lastCycle*d.TraceCycPs)
}

// ScratchpadOccupancyBytes returns un-recycled Scratchpad bytes (Fig 10).
func (d *Device) ScratchpadOccupancyBytes() int { return d.sp.occupancyBytes() }

// ScratchpadFreePages returns the free Scratchpad page count.
func (d *Device) ScratchpadFreePages() int { return d.sp.freePages() }

// PendingPages returns the destination pages not yet fully recycled.
func (d *Device) PendingPages() []uint64 { return d.sp.pendingPages() }

// TranslationStats exposes the cuckoo table statistics for the §IV-C
// ablation.
func (d *Device) TranslationStats() cuckoo.Stats { return d.tt.Stats() }

// ConfigFreePages returns the free Config Memory page count (the chaos
// soak's conservation invariant reads it alongside ScratchpadFreePages).
func (d *Device) ConfigFreePages() int { return d.cm.freePages() }

// TranslationCount returns the live Translation Table entry count.
func (d *Device) TranslationCount() int { return d.tt.Len() }

// InFlightRecords returns the number of registered, un-retired records.
func (d *Device) InFlightRecords() int { return len(d.records) }

// HandleCommand implements dram.Module: the arbiter of Fig. 6.
func (d *Device) HandleCommand(cycle int64, cmd dram.Command, wdata, rdata []byte) (bool, error) {
	if bc := cycle / 4; bc > d.stats.BufferCycles {
		d.stats.BufferCycles = bc // buffer device runs at 1/4 DRAM clock
	}
	d.lastCycle = cycle
	switch cmd.Kind {
	case dram.CmdACT:
		d.bank[d.mapper.BankIndex(cmd.Rank, cmd.BG, cmd.BA)] = int32(cmd.Row)
		return false, d.chips.Activate(cmd.Rank, cmd.BG, cmd.BA, cmd.Row)
	case dram.CmdPRE:
		d.bank[d.mapper.BankIndex(cmd.Rank, cmd.BG, cmd.BA)] = -1
		d.chips.Precharge(cmd.Rank, cmd.BG, cmd.BA)
		return false, nil
	case dram.CmdREF:
		return false, nil
	case dram.CmdRd:
		return d.handleRead(cycle, cmd, rdata)
	case dram.CmdWr:
		return d.handleWrite(cycle, cmd, wdata)
	default:
		return false, fmt.Errorf("core: unknown command %v", cmd.Kind)
	}
}

// physOf regenerates the physical address of a CAS from the buffer
// device's Bank Table (the real hardware does not see the Row on CAS
// commands; §IV-C's Addr Remap).
func (d *Device) physOf(cmd dram.Command) (uint64, error) {
	row := d.bank[d.mapper.BankIndex(cmd.Rank, cmd.BG, cmd.BA)]
	if row == -1 {
		return 0, fmt.Errorf("core: CAS to precharged bank (bank table)")
	}
	if int(row) != cmd.Row {
		return 0, fmt.Errorf("core: bank table row %d disagrees with controller row %d", row, cmd.Row)
	}
	return d.mapper.Encode(cmd.Rank, cmd.BG, cmd.BA, int(row), cmd.Col), nil
}

func (d *Device) handleRead(cycle int64, cmd dram.Command, rdata []byte) (bool, error) {
	phys, err := d.physOf(cmd)
	if err != nil {
		return false, err
	}
	if phys >= d.mmioBase {
		d.stats.MMIOReads++
		return false, d.mmioRead(phys, cmd, rdata)
	}
	if d.Faults.Fire("core.alert", cycle) {
		// Spurious device-side ALERT_N: the controller retries under its
		// backoff schedule and the next attempt proceeds normally.
		d.stats.Alerts++
		return true, nil
	}
	page := phys / PageSize
	tr, ok := d.tt.Lookup(page)
	if !ok {
		d.stats.NormalReads++
		return false, d.chips.Read(cmd, rdata)
	}
	if tr.isSource {
		// S6: pass the data through and feed the DSA.
		if err := d.chips.Read(cmd, rdata); err != nil {
			return false, err
		}
		d.stats.SourceReads++
		d.feedDSA(cycle, tr, phys, rdata)
		return false, nil
	}
	// Destination page: S8-S13.
	sp := &d.sp.pages[tr.spIdx]
	lineIdx := int(phys%PageSize) / dram.CachelineSize
	switch sp.state[lineIdx] {
	case lineRecycled:
		d.stats.NormalReads++
		return false, d.chips.Read(cmd, rdata)
	case lineReady:
		if cycle < sp.readyAt[lineIdx] {
			d.stats.Alerts++ // S13: result still in the DSA pipeline
			return true, nil
		}
		// S10: serve from the Scratchpad; the line stays pending until a
		// writeback recycles it.
		off := lineIdx * dram.CachelineSize
		copy(rdata, sp.data[off:off+dram.CachelineSize])
		d.stats.ScratchpadReads++
		return false, nil
	default: // linePending
		d.stats.Alerts++ // S13
		return true, nil
	}
}

func (d *Device) handleWrite(cycle int64, cmd dram.Command, wdata []byte) (bool, error) {
	phys, err := d.physOf(cmd)
	if err != nil {
		return false, err
	}
	if phys >= d.mmioBase {
		d.stats.MMIOWrites++
		return false, d.mmioWrite(phys, wdata)
	}
	page := phys / PageSize
	tr, ok := d.tt.Lookup(page)
	if !ok {
		d.stats.NormalWrites++
		return false, d.chips.Write(cmd, wdata)
	}
	if tr.isSource {
		// Writes into a registered source range pass through; mutating a
		// source mid-offload is an API violation the stats surface.
		d.stats.SourceWrites++
		return false, d.chips.Write(cmd, wdata)
	}
	sp := &d.sp.pages[tr.spIdx]
	lineIdx := int(phys%PageSize) / dram.CachelineSize
	switch sp.state[lineIdx] {
	case lineReady:
		if cycle < sp.readyAt[lineIdx] {
			d.stats.IgnoredWrites++ // S7: result not out of the pipeline yet
			return false, nil
		}
		// Self-Recycle (§IV-B): replace the wrCAS data with the
		// Scratchpad's, write to DRAM, and invalidate the Scratchpad line.
		off := lineIdx * dram.CachelineSize
		if err := d.chips.Write(cmd, sp.data[off:off+dram.CachelineSize]); err != nil {
			return false, err
		}
		sp.state[lineIdx] = lineRecycled
		sp.remaining--
		d.stats.SelfRecycles++
		if sp.remaining == 0 {
			d.retirePage(tr, sp)
		}
		return false, nil
	case linePending:
		d.stats.IgnoredWrites++ // S7
		return false, nil
	default: // lineRecycled: behave as a regular DIMM
		d.stats.NormalWrites++
		return false, d.chips.Write(cmd, wdata)
	}
}

// feedDSA sends one source cacheline to the record's DSA and stores the
// produced destination lines in the Scratchpad.
func (d *Device) feedDSA(cycle int64, tr *translation, phys uint64, data []byte) {
	rec := tr.rec
	if rec == nil || rec.dsa == nil {
		d.stats.DSAErrors++
		if rec != nil {
			d.abortRecord(rec)
		}
		return
	}
	recOff := tr.pageIndex*PageSize + int(phys%PageSize)
	clIdx := recOff / dram.CachelineSize
	if clIdx >= len(rec.processed) || rec.processed[clIdx] {
		return // beyond the record or already fed (repeat read)
	}
	end := recOff + dram.CachelineSize
	if end > rec.length {
		end = rec.length
	}
	if end <= recOff {
		return
	}
	rec.processed[clIdx] = true
	d.stats.DSALinesFed++
	if d.Faults.Fire("core.dsa", cycle) {
		// Injected DSA fault: abort the whole record so its buffers fall
		// back to plain-DIMM behaviour instead of stranding pending lines
		// that would assert ALERT_N forever. The driver detects the abort
		// and degrades to the CPU software path.
		d.stats.DSAErrors++
		d.abortRecord(rec)
		return
	}
	lines, err := rec.dsa.ProcessSourceLine(recOff, data[:end-recOff])
	if err != nil {
		d.stats.DSAErrors++
		d.abortRecord(rec)
		return
	}
	if t, ok := rec.dsa.(*tlsDSA); ok && t.AuthFailed() {
		d.stats.AuthFailures++
	}
	for _, dl := range lines {
		d.placeDestLine(cycle, rec, dl)
	}
}

// placeDestLine stores one DSA output line into the Scratchpad page of
// the destination page that covers its record offset.
func (d *Device) placeDestLine(cycle int64, rec *record, dl destLine) {
	pageIdx := dl.RecOff / PageSize
	if pageIdx >= len(rec.destPages) {
		d.stats.DSAErrors++
		return
	}
	tr, ok := d.tt.Lookup(rec.destPages[pageIdx])
	if !ok || tr.isSource {
		d.stats.DSAErrors++
		return
	}
	sp := &d.sp.pages[tr.spIdx]
	off := dl.RecOff % PageSize
	lineIdx := off / dram.CachelineSize
	copy(sp.data[off:off+dram.CachelineSize], dl.Data[:])
	if sp.state[lineIdx] == linePending {
		sp.state[lineIdx] = lineReady
		sp.readyAt[lineIdx] = cycle + d.cfg.DSALatencyCycles
	}
}

// evictStale force-retires a leftover allocation on page, if any.
func (d *Device) evictStale(page uint64) {
	tr, ok := d.tt.Lookup(page)
	if !ok {
		return
	}
	d.stats.StaleEvictions++
	if tr.isSource {
		// Source translations normally retire with their record; a
		// straggler means the record's destinations are being reused.
		d.cm.release(tr.cfgIdx)
		d.tt.Delete(page)
		return
	}
	sp := &d.sp.pages[tr.spIdx]
	d.retirePage(tr, sp)
}

// retirePage frees a fully recycled Scratchpad page and, when the whole
// record is done, its Config Memory pages and source translations.
func (d *Device) retirePage(tr *translation, sp *spPage) {
	rec := sp.rec
	d.tt.Delete(sp.dbufPage)
	d.sp.release(tr.spIdx)
	d.stats.PagesRecycled++
	d.traceInstant("page-recycled")
	rec.donePages++
	if rec.donePages == len(rec.destPages) {
		for _, src := range rec.srcPages {
			// Only drop translations still belonging to this record — a
			// buffer-reusing successor may have registered the same page.
			if st, ok := d.tt.Lookup(src); ok && st.isSource && st.rec == rec {
				d.cm.release(st.cfgIdx)
				d.tt.Delete(src)
			}
		}
		if d.records[rec.srcPages[0]] == rec {
			delete(d.records, rec.srcPages[0])
		}
	}
}

// abortRecord tears down an in-flight offload after a DSA fault or a
// driver-issued abort op: every translation, Scratchpad page and Config
// Memory page of the record is freed, so its buffers behave like a plain
// DIMM again (no stranded pending lines asserting ALERT_N forever).
func (d *Device) abortRecord(rec *record) {
	for _, dp := range rec.destPages {
		if tr, ok := d.tt.Lookup(dp); ok && !tr.isSource && tr.rec == rec {
			d.sp.release(tr.spIdx)
			d.tt.Delete(dp)
		}
	}
	for _, sp := range rec.srcPages {
		if tr, ok := d.tt.Lookup(sp); ok && tr.isSource && tr.rec == rec {
			d.cm.release(tr.cfgIdx)
			d.tt.Delete(sp)
		}
	}
	if len(rec.srcPages) > 0 && d.records[rec.srcPages[0]] == rec {
		delete(d.records, rec.srcPages[0])
	}
	if d.reg != nil && d.reg.rec == rec {
		d.reg = nil
	}
	d.stats.RecordAborts++
	d.traceInstant("record-abort")
}

// abortByPage resolves a record from any of its registered pages and
// aborts it; unknown pages are a no-op (the record may already have
// retired or aborted).
func (d *Device) abortByPage(page uint64) {
	if rec, ok := d.records[page]; ok {
		d.abortRecord(rec)
		return
	}
	if tr, ok := d.tt.Lookup(page); ok && tr.rec != nil {
		d.abortRecord(tr.rec)
	}
}

// --- MMIO config space ---------------------------------------------------

// mmioRead serves status (offset 0) and the pending-page list (offsets
// 64, 128, ...; eight page numbers per 64-byte read).
func (d *Device) mmioRead(phys uint64, cmd dram.Command, dst []byte) error {
	off := phys - d.mmioBase
	for i := 0; i < dram.CachelineSize; i++ {
		dst[i] = 0
	}
	if off == 0 {
		binary.LittleEndian.PutUint64(dst[0:], uint64(d.sp.freePages()))
		pend := d.sp.pendingPages()
		binary.LittleEndian.PutUint64(dst[8:], uint64(len(pend)))
		binary.LittleEndian.PutUint64(dst[16:], d.stats.AuthFailures)
		binary.LittleEndian.PutUint64(dst[24:], uint64(d.sp.occupancyBytes()))
		return nil
	}
	chunk := int(off/dram.CachelineSize) - 1
	pend := d.sp.pendingPages()
	for i := 0; i < 8; i++ {
		idx := chunk*8 + i
		if idx >= len(pend) {
			break
		}
		binary.LittleEndian.PutUint64(dst[i*8:], pend[idx])
	}
	return nil
}

// mmioWrite handles registration headers (offset 0) and context chunks
// (offsets 64, 128, ...), S17 in Fig. 6.
func (d *Device) mmioWrite(phys uint64, src []byte) error {
	off := phys - d.mmioBase
	if off == 0 {
		return d.register(src)
	}
	// Context chunk for the in-flight registration.
	if d.reg == nil {
		return fmt.Errorf("core: context write with no registration in flight")
	}
	r := d.reg
	take := r.ctxLen - r.rx
	if take > dram.CachelineSize {
		take = dram.CachelineSize
	}
	cp := &d.cm.pages[r.cfgIdx]
	cp.raw = append(cp.raw, src[:take]...)
	r.rx += take
	if r.rx >= r.ctxLen {
		return d.finishRegistration()
	}
	return nil
}

// register parses a 64-byte registration header.
func (d *Device) register(src []byte) error {
	if len(src) < dram.CachelineSize {
		return fmt.Errorf("core: short registration write")
	}
	if binary.LittleEndian.Uint16(src[0:]) != regMagic {
		return fmt.Errorf("core: bad registration magic")
	}
	if src[2] == opAbort {
		d.abortByPage(binary.LittleEndian.Uint64(src[8:]))
		return nil
	}
	op := Opcode(src[2])
	ctxLen := int(binary.LittleEndian.Uint16(src[4:]))
	pageIndex := int(binary.LittleEndian.Uint16(src[6:]))
	sbufPage := binary.LittleEndian.Uint64(src[8:])
	dbufPage := binary.LittleEndian.Uint64(src[16:])
	recordLen := int(binary.LittleEndian.Uint32(src[24:]))
	ctxPage := binary.LittleEndian.Uint64(src[28:])
	d.stats.Registrations++

	// Re-registering a page whose previous offload never fully recycled
	// (e.g. an S7-ignored writeback left lines stranded in the
	// Scratchpad) implicitly retires the stale allocation: by reusing
	// the buffer the software has declared the old record's content
	// consumed, so dropping the un-written-back lines is safe.
	d.evictStale(sbufPage)
	d.evictStale(dbufPage)
	if d.tt.Contains(sbufPage) || d.tt.Contains(dbufPage) {
		return fmt.Errorf("core: page still registered after stale eviction (sbuf %#x / dbuf %#x)", sbufPage, dbufPage)
	}

	var rec *record
	if pageIndex == 0 {
		if recordLen <= 0 {
			return fmt.Errorf("core: record length %d invalid", recordLen)
		}
		rec = &record{
			op:        op,
			length:    recordLen,
			processed: make([]bool, (recordLen+dram.CachelineSize-1)/dram.CachelineSize),
		}
		d.records[sbufPage] = rec
	} else {
		var ok bool
		rec, ok = d.records[ctxPage]
		if !ok {
			return fmt.Errorf("core: page %d references unknown record %#x", pageIndex, ctxPage)
		}
		if pageIndex != len(rec.srcPages) {
			return fmt.Errorf("core: out-of-order page registration %d", pageIndex)
		}
	}

	cfgIdx := d.cm.alloc(rec)
	if cfgIdx == -1 {
		if pageIndex == 0 {
			delete(d.records, sbufPage)
		}
		return ErrNoScratchpad
	}
	spIdx := d.sp.alloc(dbufPage, rec)
	if spIdx == -1 {
		d.cm.release(cfgIdx)
		if pageIndex == 0 {
			delete(d.records, sbufPage)
		}
		return ErrNoScratchpad
	}
	// Lines beyond the record's destination coverage in this page can
	// never be produced by the DSA; pre-mark them recycled so the page
	// retires once the covered lines are written back.
	covered := destCoverage(op, recordLen, pageIndex)
	sp := &d.sp.pages[spIdx]
	for l := (covered + dram.CachelineSize - 1) / dram.CachelineSize; l < LinesPerPage; l++ {
		sp.state[l] = lineRecycled
		sp.remaining--
	}
	if pageIndex == 0 {
		rec.cfgIdx = cfgIdx
	}
	rec.srcPages = append(rec.srcPages, sbufPage)
	rec.destPages = append(rec.destPages, dbufPage)

	srcTr := &translation{isSource: true, cfgIdx: cfgIdx, destPage: dbufPage, pageIndex: pageIndex, rec: rec}
	if d.Faults.Fire("core.ttinsert", int64(d.stats.Registrations)) {
		d.failRegistration(rec, cfgIdx, spIdx, pageIndex)
		return fmt.Errorf("core: translation insert (injected): %w", ErrTranslationInsert)
	}
	if err := d.tt.Insert(sbufPage, srcTr); err != nil {
		d.failRegistration(rec, cfgIdx, spIdx, pageIndex)
		return fmt.Errorf("core: translation insert (%v): %w", err, ErrTranslationInsert)
	}
	dstTr := &translation{spIdx: spIdx, rec: rec}
	if err := d.tt.Insert(dbufPage, dstTr); err != nil {
		d.tt.Delete(sbufPage)
		d.failRegistration(rec, cfgIdx, spIdx, pageIndex)
		return fmt.Errorf("core: translation insert (%v): %w", err, ErrTranslationInsert)
	}

	if pageIndex == 0 {
		d.reg = &regState{rec: rec, ctxLen: ctxLen, cfgIdx: cfgIdx, srcPage: sbufPage}
		if ctxLen == 0 {
			return d.finishRegistration()
		}
	}
	return nil
}

// failRegistration unwinds a page registration that could not complete:
// its Config Memory and Scratchpad allocations return to the free lists
// and the record forgets the page, so nothing leaks on the error path.
// (Earlier pages of a multi-page record stay registered; the driver
// aborts the whole record when registration fails partway.)
func (d *Device) failRegistration(rec *record, cfgIdx, spIdx, pageIndex int) {
	d.cm.release(cfgIdx)
	d.sp.release(spIdx)
	rec.srcPages = rec.srcPages[:pageIndex]
	rec.destPages = rec.destPages[:pageIndex]
	if pageIndex == 0 && len(rec.srcPages) == 0 {
		for page, r := range d.records {
			if r == rec {
				delete(d.records, page)
			}
		}
	}
}

// destCoverage returns how many bytes of the destination page at
// pageIndex the DSA will produce: TLS output matches the record length
// (payload + trailer); the page-granular (de)compression DSAs always
// fill whole pages.
func destCoverage(op Opcode, recordLen, pageIndex int) int {
	switch op {
	case OpTLSEncrypt, OpTLSDecrypt:
		n := recordLen - pageIndex*PageSize
		if n < 0 {
			n = 0
		}
		if n > PageSize {
			n = PageSize
		}
		return n
	default:
		return PageSize
	}
}

// finishRegistration builds the DSA from the accumulated context.
func (d *Device) finishRegistration() error {
	r := d.reg
	d.reg = nil
	dsa, err := buildDSA(r.rec.op, r.rec.length, d.cm.pages[r.cfgIdx].raw)
	if err != nil {
		d.stats.DSAErrors++
		d.abortRecord(r.rec)
		return fmt.Errorf("core: DSA build: %w", err)
	}
	r.rec.dsa = dsa
	return nil
}
