// Package rdma models an RDMA-capable NIC that deposits inbound
// records directly into SmartDIMM lower-half buffers — the zero-copy
// peer-DMA data path of RecoNIC-style designs (PAPERS.md: "A Primer on
// RecoNIC", "In-Network Memory Access"). The model is the verbs subset
// the reproduction needs:
//
//   - Memory regions (MR): rkey-named, bounds-checked windows over a
//     rank's buffer pages. Every one-sided WRITE is refused unless it
//     lands wholly inside a currently-valid MR — the invariant the
//     chaos soak replays against.
//   - Queue pairs (QP): a per-connection send queue of work-queue
//     entries (WQE) bound to one MR, plus a shared completion queue
//     (CQE per WQE, success or failure).
//   - Doorbells: posted WQEs execute only when the doorbell rings; the
//     ring batches ceil(pending/DoorbellBatch) descriptors per MMIO
//     write exactly like the fleet's submission queues (same default
//     batch geometry), which is what makes doorbell coalescing a
//     measurable quantity.
//   - RNR/retry: receiver-not-ready NAKs (injected, or a stale rkey
//     after the MR moved mid-flight) back off exponentially and retry
//     up to RetryLimit before completing in error — never by writing
//     outside a registration.
//
// Executed writes go through sim.System.PeerDMAWrite: each line is
// priced by the owning rank's memory controller and bandwidth meter and
// never allocates into the LLC's DDIO ways. That is the honest version
// of the zero-copy win: host DRAM and the LLC are out of the loop, but
// the rank's write queue still sees every byte.
//
// Determinism: all state lives in the NIC struct, map access is keyed
// (never iterated) on hot paths, and full scans walk creation-order
// slices; fault decisions come from the seeded injector's per-site
// streams. Two runs with equal seeds produce byte-identical TraceString
// output at any GOMAXPROCS.
package rdma

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Fault-injection sites (consulted on the engine's picosecond clock).
const (
	// SiteDoorbell drops a doorbell MMIO write: the adapter never sees
	// the ring and the posted WQEs stay pending until the next ring.
	SiteDoorbell = "rdma.doorbell"
	// SiteRNR makes the receiver NAK a WQE "not ready": the sender
	// backs off and retries, up to Config.RetryLimit times.
	SiteRNR = "rdma.rnr"
)

// Typed errors callers gate degradation ladders on.
var (
	// ErrSQFull reports a full send queue: the poster must ring the
	// doorbell (drain) before posting more work.
	ErrSQFull = errors.New("rdma: send queue full")
	// ErrRetryExhausted reports a deposit whose doorbells kept getting
	// lost: the WQEs remain pending and a later ring will drain them.
	ErrRetryExhausted = errors.New("rdma: doorbell retries exhausted")
	// ErrNoQP reports an operation on an unknown queue pair.
	ErrNoQP = errors.New("rdma: no such QP")
)

// Config assembles a NIC.
type Config struct {
	Sys *sim.System
	// QPDepth is the send-queue WQE capacity per QP. Zero selects 16.
	QPDepth int
	// DoorbellBatch is the descriptor count the adapter fetches per
	// doorbell ring; a ring of n pending WQEs costs
	// ceil(n/DoorbellBatch) MMIO writes — the fleet's submission-queue
	// batching geometry. Zero selects 4 (the fleet default).
	DoorbellBatch int
	// DoorbellPs is the cost of one doorbell MMIO write plus fence.
	// Zero selects 120ns (the fleet's BatchOverheadPs default).
	DoorbellPs int64
	// MTU bounds the payload bytes of one WQE; larger deposits split.
	// Zero selects 4096.
	MTU int
	// LineRateGbps is the NIC wire rate serializing every WQE payload.
	// Zero selects 100.
	LineRateGbps float64
	// RNRTimeoutPs is the base receiver-not-ready backoff; attempt k
	// waits RNRTimeoutPs<<min(k,3). Zero selects 4us.
	RNRTimeoutPs int64
	// RetryLimit bounds RNR retries per WQE and doorbell re-rings per
	// deposit. Zero selects 7 (the IB-verbs retry-count default).
	RetryLimit int
	// Faults arms the rdma.* injection sites; nil never fires.
	Faults *fault.Injector
	// Tracer, when non-nil, records deposit spans, doorbell/RNR
	// instants and QP-depth/coalescing/LLC-pressure counters on an
	// "rdma" track.
	Tracer *telemetry.Tracer
	// TraceOps records every verb into the canonical trace returned by
	// TraceString — the chaos soak's byte-compared artifact. Off by
	// default (long runs would accumulate MBs).
	TraceOps bool
	// RecordLandings keeps an in-order log of every executed write
	// (rkey, physical address, length) for invariant cross-checks.
	RecordLandings bool
}

// wireHeaderBytes is the per-WQE on-wire overhead (Eth+IP+UDP+BTH+RETH
// +ICRC for RoCEv2).
const wireHeaderBytes = 96

// MR is one registered memory region.
type MR struct {
	Rkey  uint32
	Addr  uint64
	Len   int
	Rank  int // channel index owning Addr at registration time
	Valid bool
}

// wqe is one posted one-sided WRITE work-queue entry.
type wqe struct {
	rkey uint32
	off  int
	data []byte
}

// QP is a queue pair: a send queue bound to the connection's current MR.
type QP struct {
	ID   int
	Rkey uint32 // current binding; stale WQEs retarget to it
	sq   []wqe
}

// CQE is one completion-queue entry.
type CQE struct {
	QP     int
	Len    int
	Status string // "ok", "rnr", "stale", "bounds"
	AtPs   int64
}

// Landing records one executed write for invariant checks.
type Landing struct {
	Rkey uint32
	Addr uint64
	Len  int
}

// Stats aggregates NIC counters.
type Stats struct {
	MRs, LiveMRs      int
	Posted            uint64
	Completed         uint64
	Failed            uint64
	Doorbells         uint64
	DoorbellsLost     uint64
	RNRNaks           uint64
	StaleRkeyRetries  uint64
	BoundsRefusals    uint64 // out-of-MR WQEs refused (never written)
	PeerBytes         uint64
	WirePs            int64
	Preloaded         uint64
	MRInvalidations   uint64
	Registrations     uint64
	DoorbellsCoalesce float64 // mean WQEs drained per doorbell ring
}

// NIC is the RDMA adapter model.
type NIC struct {
	cfg Config

	mrs      map[uint32]*MR
	mrOrder  []uint32
	nextRkey uint32

	qps     map[int]*QP
	qpOrder []int

	cq       []CQE
	landings []Landing
	trace    []string

	wireBusyPs int64
	pending    int // WQEs posted and not yet executed/failed

	stats     Stats
	drainedDB uint64 // WQEs drained over all doorbells (coalescing num)

	tr    *telemetry.Tracer
	track telemetry.TrackID
}

// New builds a NIC over sys.
func New(cfg Config) (*NIC, error) {
	if cfg.Sys == nil {
		return nil, fmt.Errorf("rdma: nil system")
	}
	if cfg.QPDepth <= 0 {
		cfg.QPDepth = 16
	}
	if cfg.DoorbellBatch <= 0 {
		cfg.DoorbellBatch = 4
	}
	if cfg.DoorbellPs <= 0 {
		cfg.DoorbellPs = 120 * sim.Ns
	}
	if cfg.MTU <= 0 {
		cfg.MTU = 4096
	}
	if cfg.LineRateGbps <= 0 {
		cfg.LineRateGbps = 100
	}
	if cfg.RNRTimeoutPs <= 0 {
		cfg.RNRTimeoutPs = 4 * sim.Us
	}
	if cfg.RetryLimit <= 0 {
		cfg.RetryLimit = 7
	}
	n := &NIC{
		cfg: cfg,
		mrs: make(map[uint32]*MR),
		qps: make(map[int]*QP),
	}
	if cfg.Tracer != nil {
		n.tr = cfg.Tracer
		n.track = cfg.Tracer.Track("rdma")
	}
	return n, nil
}

func (n *NIC) now() int64 { return n.cfg.Sys.Engine.Now() }

func (n *NIC) tracef(format string, args ...any) {
	if n.cfg.TraceOps {
		n.trace = append(n.trace, fmt.Sprintf(format, args...))
	}
}

// RegisterMR registers [addr, addr+ln) as a remotely-writable region
// and returns its rkey. The owning rank is resolved from the address so
// MR-locality ("a record lands on the rank owning its registration")
// is a property of the table, not of the caller's bookkeeping.
func (n *NIC) RegisterMR(addr uint64, ln int) (uint32, error) {
	if ln <= 0 {
		return 0, fmt.Errorf("rdma: MR of %d bytes", ln)
	}
	rank, err := n.cfg.Sys.Hier.ChannelOf(addr)
	if err != nil {
		return 0, fmt.Errorf("rdma: MR at %#x: %w", addr, err)
	}
	n.nextRkey++
	mr := &MR{Rkey: n.nextRkey, Addr: addr, Len: ln, Rank: rank, Valid: true}
	n.mrs[mr.Rkey] = mr
	n.mrOrder = append(n.mrOrder, mr.Rkey)
	n.stats.Registrations++
	n.tracef("mr rk%d d%d len=%d", mr.Rkey, rank, ln)
	return mr.Rkey, nil
}

// InvalidateMR unregisters an MR: in-flight WQEs holding its rkey NAK
// at execution instead of landing in memory the region no longer owns.
func (n *NIC) InvalidateMR(rkey uint32) {
	mr := n.mrs[rkey]
	if mr == nil || !mr.Valid {
		return
	}
	mr.Valid = false
	n.stats.MRInvalidations++
	n.tracef("inval rk%d", rkey)
	if n.tr != nil {
		n.tr.Instant(n.track, "mr_invalidate", n.now())
	}
}

// LookupMR returns a copy of the MR table entry.
func (n *NIC) LookupMR(rkey uint32) (MR, bool) {
	mr := n.mrs[rkey]
	if mr == nil {
		return MR{}, false
	}
	return *mr, true
}

// CreateQP creates a queue pair bound to an MR.
func (n *NIC) CreateQP(id int, rkey uint32) error {
	if _, ok := n.qps[id]; ok {
		return fmt.Errorf("rdma: QP %d exists", id)
	}
	if n.mrs[rkey] == nil {
		return fmt.Errorf("rdma: QP %d: unknown rkey %d", id, rkey)
	}
	n.qps[id] = &QP{ID: id, Rkey: rkey}
	n.qpOrder = append(n.qpOrder, id)
	n.tracef("qp c%d rk%d", id, rkey)
	return nil
}

// QuiesceQP invalidates the MR a QP currently targets — the step a
// drain-and-reshard migration MUST take before copying buffers, so an
// in-flight peer write NAKs instead of landing in pages about to be
// freed. Returns the invalidated rkey (0 when the QP is unknown).
func (n *NIC) QuiesceQP(id int) uint32 {
	qp := n.qps[id]
	if qp == nil {
		return 0
	}
	n.InvalidateMR(qp.Rkey)
	return qp.Rkey
}

// RebindQP registers a fresh MR over the connection's new buffer and
// points the QP at it; stale in-flight WQEs retarget here on execution.
func (n *NIC) RebindQP(id int, addr uint64, ln int) (uint32, error) {
	qp := n.qps[id]
	if qp == nil {
		return 0, ErrNoQP
	}
	rkey, err := n.RegisterMR(addr, ln)
	if err != nil {
		return 0, err
	}
	qp.Rkey = rkey
	n.tracef("rebind c%d rk%d", id, rkey)
	return rkey, nil
}

// PostWrite posts one one-sided WRITE WQE (payload lands at MR offset
// off). The doorbell has not rung: nothing executes yet.
func (n *NIC) PostWrite(id, off int, data []byte) error {
	qp := n.qps[id]
	if qp == nil {
		return ErrNoQP
	}
	if len(qp.sq) >= n.cfg.QPDepth {
		return ErrSQFull
	}
	d := make([]byte, len(data))
	copy(d, data)
	qp.sq = append(qp.sq, wqe{rkey: qp.Rkey, off: off, data: d})
	n.pending++
	n.stats.Posted++
	n.tracef("post c%d off=%d len=%d rk%d", id, off, len(data), qp.Rkey)
	if n.tr != nil {
		n.tr.Counter(n.track, "qp_depth", n.now(), float64(n.pending))
	}
	return nil
}

// RingDoorbell drains a QP's send queue: ceil(pending/DoorbellBatch)
// MMIO rings, each of which the injector may drop (the adapter never
// fetches that batch and draining stops until the next ring). Returns
// the modelled device time of everything that executed.
func (n *NIC) RingDoorbell(id int) (int64, error) {
	qp := n.qps[id]
	if qp == nil {
		return 0, ErrNoQP
	}
	now := n.now()
	cursor := now
	for len(qp.sq) > 0 {
		n.stats.Doorbells++
		cursor += n.cfg.DoorbellPs
		if n.cfg.Faults.Fire(SiteDoorbell, now) {
			n.stats.DoorbellsLost++
			n.tracef("db c%d lost", id)
			if n.tr != nil {
				n.tr.Instant(n.track, "doorbell_lost", now)
			}
			break
		}
		batch := n.cfg.DoorbellBatch
		if batch > len(qp.sq) {
			batch = len(qp.sq)
		}
		n.drainedDB += uint64(batch)
		n.tracef("db c%d n=%d", id, batch)
		for i := 0; i < batch; i++ {
			cursor = n.exec(qp, qp.sq[i], cursor)
		}
		qp.sq = qp.sq[batch:]
	}
	if n.tr != nil {
		if n.stats.Doorbells > 0 {
			n.tr.Counter(n.track, "wqe_per_doorbell", now,
				float64(n.drainedDB)/float64(n.stats.Doorbells))
		}
		n.tr.Counter(n.track, "qp_depth", now, float64(n.pending))
		n.tr.Counter(n.track, "llc_miss_proxy", now, n.cfg.Sys.LLCMissRateSample())
		if cursor > now {
			n.tr.Span(n.track, "rdma", now, cursor-now)
		}
	}
	return cursor - now, nil
}

// exec runs one WQE at simulated instant cursor and returns the new
// cursor. Completion (success or failure) is recorded on the CQ; the
// WQE never writes memory outside a currently-valid registration.
func (n *NIC) exec(qp *QP, w wqe, cursor int64) int64 {
	now := n.now()
	// Stale rkey: the MR moved (migration) after this WQE was posted.
	// Retarget to the QP's current binding, charging one NAK round trip.
	if w.rkey != qp.Rkey {
		n.stats.StaleRkeyRetries++
		cursor += n.cfg.RNRTimeoutPs
		n.tracef("stale c%d rk%d->rk%d", qp.ID, w.rkey, qp.Rkey)
		w.rkey = qp.Rkey
	}
	// RNR NAKs: injected receiver-not-ready, exponential backoff.
	for attempt := 0; n.cfg.Faults.Fire(SiteRNR, now); attempt++ {
		n.stats.RNRNaks++
		if n.tr != nil {
			n.tr.Instant(n.track, "rnr", now)
		}
		shift := attempt
		if shift > 3 {
			shift = 3
		}
		cursor += n.cfg.RNRTimeoutPs << shift
		if attempt+1 >= n.cfg.RetryLimit {
			n.complete(qp.ID, len(w.data), "rnr", cursor)
			n.tracef("fail c%d rnr", qp.ID)
			return cursor
		}
	}
	mr := n.mrs[w.rkey]
	if mr == nil || !mr.Valid {
		n.complete(qp.ID, len(w.data), "stale", cursor)
		n.tracef("fail c%d rk%d invalid", qp.ID, w.rkey)
		return cursor
	}
	if w.off < 0 || w.off+len(w.data) > mr.Len {
		n.stats.BoundsRefusals++
		n.complete(qp.ID, len(w.data), "bounds", cursor)
		n.tracef("fail c%d rk%d bounds off=%d len=%d", qp.ID, w.rkey, w.off, len(w.data))
		return cursor
	}
	// Wire serialization on the shared NIC port, then the peer write
	// priced by the owning rank's controller.
	ser := n.wirePs(len(w.data))
	start := cursor
	if n.wireBusyPs > start {
		start = n.wireBusyPs
	}
	n.wireBusyPs = start + ser
	n.stats.WirePs += ser
	wlat, err := n.cfg.Sys.PeerDMAWrite(mr.Addr+uint64(w.off), w.data)
	if err != nil {
		// Unmapped addresses cannot happen through a validated MR; a
		// controller refusal is a completion error, not a landing.
		n.complete(qp.ID, len(w.data), "bounds", cursor)
		n.tracef("fail c%d write: %v", qp.ID, err)
		return n.wireBusyPs
	}
	n.stats.PeerBytes += uint64(len(w.data))
	if n.cfg.RecordLandings {
		n.landings = append(n.landings, Landing{Rkey: w.rkey, Addr: mr.Addr + uint64(w.off), Len: len(w.data)})
	}
	cursor = n.wireBusyPs + wlat
	n.complete(qp.ID, len(w.data), "ok", cursor)
	n.tracef("exec c%d rk%d off=%d len=%d", qp.ID, w.rkey, w.off, len(w.data))
	return cursor
}

// complete retires a WQE onto the completion queue.
func (n *NIC) complete(qpID, ln int, status string, atPs int64) {
	n.pending--
	if status == "ok" {
		n.stats.Completed++
	} else {
		n.stats.Failed++
	}
	n.cq = append(n.cq, CQE{QP: qpID, Len: ln, Status: status, AtPs: atPs})
}

// wirePs is the serialization time of one WQE payload on the port.
func (n *NIC) wirePs(payload int) int64 {
	bits := float64(payload+wireHeaderBytes) * 8
	return int64(bits * 1000 / n.cfg.LineRateGbps) // Gbit/s -> ps/bit
}

// Deposit is the sender-side convenience verb the ingress path uses:
// split data into MTU-sized WQEs landing at MR offset off onward, post
// them, and ring the doorbell until the queue drains (re-ringing when
// the injector eats a doorbell, up to RetryLimit). Returns the modelled
// device time. On ErrRetryExhausted the remaining WQEs stay posted and
// a later ring drains them — nothing is lost, only late.
func (n *NIC) Deposit(id, off int, data []byte) (int64, error) {
	var lat int64
	for len(data) > 0 {
		c := len(data)
		if c > n.cfg.MTU {
			c = n.cfg.MTU
		}
		if err := n.PostWrite(id, off, data[:c]); err != nil {
			if !errors.Is(err, ErrSQFull) {
				return lat, err
			}
			// Backpressure: drain, then repost.
			l, derr := n.RingDoorbell(id)
			lat += l
			if derr != nil {
				return lat, derr
			}
			if n.qLen(id) > 0 {
				return lat, ErrRetryExhausted
			}
			if err := n.PostWrite(id, off, data[:c]); err != nil {
				return lat, err
			}
		}
		off += c
		data = data[c:]
	}
	for attempt := 0; ; attempt++ {
		l, err := n.RingDoorbell(id)
		lat += l
		if err != nil {
			return lat, err
		}
		if n.qLen(id) == 0 {
			return lat, nil
		}
		if attempt+1 >= n.cfg.RetryLimit {
			return lat, ErrRetryExhausted
		}
	}
}

// Preload stages data into a QP's MR at construction time: the same
// bounds-checked functional write as Deposit, with no wire or doorbell
// occupancy (the bytes arrived before the measured epoch).
func (n *NIC) Preload(id, off int, data []byte) error {
	qp := n.qps[id]
	if qp == nil {
		return ErrNoQP
	}
	mr := n.mrs[qp.Rkey]
	if mr == nil || !mr.Valid {
		return fmt.Errorf("rdma: preload c%d: rkey %d invalid", id, qp.Rkey)
	}
	if off < 0 || off+len(data) > mr.Len {
		return fmt.Errorf("rdma: preload c%d: off=%d len=%d outside MR (%d bytes)", id, off, len(data), mr.Len)
	}
	if _, err := n.cfg.Sys.PeerDMAWrite(mr.Addr+uint64(off), data); err != nil {
		return err
	}
	n.stats.Preloaded += uint64(len(data))
	if n.cfg.RecordLandings {
		n.landings = append(n.landings, Landing{Rkey: qp.Rkey, Addr: mr.Addr + uint64(off), Len: len(data)})
	}
	return nil
}

// PollCQ drains up to max completions (max <= 0 drains all).
func (n *NIC) PollCQ(max int) []CQE {
	if max <= 0 || max > len(n.cq) {
		max = len(n.cq)
	}
	out := n.cq[:max]
	n.cq = n.cq[max:]
	return out
}

// qLen returns a QP's send-queue depth.
func (n *NIC) qLen(id int) int {
	if qp := n.qps[id]; qp != nil {
		return len(qp.sq)
	}
	return 0
}

// Pending returns the NIC-wide count of posted-but-unretired WQEs.
func (n *NIC) Pending() int { return n.pending }

// DrainAll rings every QP's doorbell in creation order (the disarm+
// drain step of the chaos soak) and returns the summed device time.
func (n *NIC) DrainAll() (int64, error) {
	var lat int64
	for _, id := range n.qpOrder {
		l, err := n.RingDoorbell(id)
		lat += l
		if err != nil {
			return lat, err
		}
	}
	return lat, nil
}

// Landings returns the executed-write log (RecordLandings only).
func (n *NIC) Landings() []Landing { return n.landings }

// MRSnapshot returns the MR table in registration order.
func (n *NIC) MRSnapshot() []MR {
	out := make([]MR, 0, len(n.mrOrder))
	for _, rk := range n.mrOrder {
		out = append(out, *n.mrs[rk])
	}
	return out
}

// Stats returns a snapshot of the NIC counters.
func (n *NIC) Stats() Stats {
	s := n.stats
	s.MRs = len(n.mrOrder)
	for _, rk := range n.mrOrder {
		if n.mrs[rk].Valid {
			s.LiveMRs++
		}
	}
	if s.Doorbells > 0 {
		s.DoorbellsCoalesce = float64(n.drainedDB) / float64(s.Doorbells)
	}
	return s
}

// TraceString returns the canonical verb log (TraceOps only) — the
// byte-compared artifact of the determinism gates.
func (n *NIC) TraceString() string {
	if len(n.trace) == 0 {
		return ""
	}
	return strings.Join(n.trace, "\n") + "\n"
}
