package rdma

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

func testSys(t *testing.T) *sim.System {
	t.Helper()
	sys, err := sim.NewSystem(sim.SystemConfig{
		WithSmartDIMM: true,
		DataPath:      sim.DataPathPeer,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func testNIC(t *testing.T, sys *sim.System, cfg Config) (*NIC, uint64, uint32) {
	t.Helper()
	addr, err := sys.Driver.AllocPages(4)
	if err != nil {
		t.Fatalf("AllocPages: %v", err)
	}
	cfg.Sys = sys
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rkey, err := n.RegisterMR(addr, 4*4096)
	if err != nil {
		t.Fatalf("RegisterMR: %v", err)
	}
	if err := n.CreateQP(0, rkey); err != nil {
		t.Fatalf("CreateQP: %v", err)
	}
	return n, addr, rkey
}

func payload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*7 + 3)
	}
	return p
}

func TestRDMADepositLandsInMR(t *testing.T) {
	sys := testSys(t)
	n, addr, _ := testNIC(t, sys, Config{RecordLandings: true})
	data := payload(10_000)
	before := sys.MemoryBytesMoved()
	lat, err := n.Deposit(0, 0, data)
	if err != nil {
		t.Fatalf("Deposit: %v", err)
	}
	if lat <= 0 {
		t.Fatalf("deposit charged %d ps", lat)
	}
	got, _, err := sys.DMAOut(addr, len(data))
	if err != nil {
		t.Fatalf("DMAOut: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("payload mismatch after peer deposit")
	}
	st := n.Stats()
	if st.Posted != 3 || st.Completed != 3 || st.Failed != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.PeerBytes != uint64(len(data)) {
		t.Fatalf("peer bytes %d != %d", st.PeerBytes, len(data))
	}
	if n.Pending() != 0 {
		t.Fatalf("pending %d after drain", n.Pending())
	}
	// The peer write is priced on the rank's channel meter.
	if sys.MemoryBytesMoved() <= before {
		t.Fatalf("peer-DMA write not accounted on the channel meter")
	}
	for _, l := range n.Landings() {
		mr, ok := n.LookupMR(l.Rkey)
		if !ok || l.Addr < mr.Addr || l.Addr+uint64(l.Len) > mr.Addr+uint64(mr.Len) {
			t.Fatalf("landing outside its MR: %+v", l)
		}
	}
}

func TestRDMABoundsRefusedWithoutWrite(t *testing.T) {
	sys := testSys(t)
	n, addr, _ := testNIC(t, sys, Config{RecordLandings: true})
	snap, _, err := sys.DMAOut(addr, 4*4096)
	if err != nil {
		t.Fatalf("DMAOut: %v", err)
	}
	if err := n.PostWrite(0, 4*4096-100, payload(4096)); err != nil {
		t.Fatalf("PostWrite: %v", err)
	}
	if _, err := n.RingDoorbell(0); err != nil {
		t.Fatalf("RingDoorbell: %v", err)
	}
	st := n.Stats()
	if st.BoundsRefusals != 1 || st.Failed != 1 || st.Completed != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if len(n.Landings()) != 0 {
		t.Fatalf("out-of-bounds WQE landed: %+v", n.Landings())
	}
	after, _, err := sys.DMAOut(addr, 4*4096)
	if err != nil {
		t.Fatalf("DMAOut: %v", err)
	}
	if !bytes.Equal(snap, after) {
		t.Fatalf("refused write still mutated the MR region")
	}
	cqe := n.PollCQ(0)
	if len(cqe) != 1 || cqe[0].Status != "bounds" {
		t.Fatalf("CQ: %+v", cqe)
	}
}

func TestRDMAStaleRkeyRetargetsToRebind(t *testing.T) {
	sys := testSys(t)
	n, oldAddr, oldRkey := testNIC(t, sys, Config{RecordLandings: true})
	data := payload(2048)
	if err := n.PostWrite(0, 0, data); err != nil {
		t.Fatalf("PostWrite: %v", err)
	}
	// Migration: quiesce the old MR, move the buffer, rebind.
	if rk := n.QuiesceQP(0); rk != oldRkey {
		t.Fatalf("quiesced rk%d, want rk%d", rk, oldRkey)
	}
	oldSnap, _, _ := sys.DMAOut(oldAddr, 2048)
	newAddr, err := sys.Driver.AllocPages(4)
	if err != nil {
		t.Fatalf("AllocPages: %v", err)
	}
	if _, err := n.RebindQP(0, newAddr, 4*4096); err != nil {
		t.Fatalf("RebindQP: %v", err)
	}
	if _, err := n.RingDoorbell(0); err != nil {
		t.Fatalf("RingDoorbell: %v", err)
	}
	st := n.Stats()
	if st.StaleRkeyRetries != 1 {
		t.Fatalf("stale retries %d, want 1 (%+v)", st.StaleRkeyRetries, st)
	}
	got, _, _ := sys.DMAOut(newAddr, 2048)
	if !bytes.Equal(got, data) {
		t.Fatalf("retargeted write missing from new MR")
	}
	oldNow, _, _ := sys.DMAOut(oldAddr, 2048)
	if !bytes.Equal(oldSnap, oldNow) {
		t.Fatalf("in-flight write landed in the quiesced region")
	}
}

func TestRDMADoorbellLossReRings(t *testing.T) {
	sys := testSys(t)
	inj := fault.New(11)
	inj.Arm(SiteDoorbell, fault.OneShot{N: 1}) // first consult: seq starts at 1
	n, addr, _ := testNIC(t, sys, Config{Faults: inj})
	data := payload(4096)
	if _, err := n.Deposit(0, 0, data); err != nil {
		t.Fatalf("Deposit under doorbell loss: %v", err)
	}
	st := n.Stats()
	if st.DoorbellsLost != 1 {
		t.Fatalf("doorbells lost %d, want 1", st.DoorbellsLost)
	}
	if st.Completed != 1 || n.Pending() != 0 {
		t.Fatalf("WQE not delivered after re-ring: %+v pending=%d", st, n.Pending())
	}
	got, _, _ := sys.DMAOut(addr, len(data))
	if !bytes.Equal(got, data) {
		t.Fatalf("payload missing after re-rung doorbell")
	}
}

func TestRDMARNRRetryExhaustionFailsCleanly(t *testing.T) {
	sys := testSys(t)
	inj := fault.New(7)
	inj.Arm(SiteRNR, fault.Bernoulli{Prob: 1}) // receiver never ready
	n, addr, _ := testNIC(t, sys, Config{Faults: inj, RetryLimit: 3, RecordLandings: true})
	snap, _, _ := sys.DMAOut(addr, 4096)
	if err := n.PostWrite(0, 0, payload(4096)); err != nil {
		t.Fatalf("PostWrite: %v", err)
	}
	lat, err := n.RingDoorbell(0)
	if err != nil {
		t.Fatalf("RingDoorbell: %v", err)
	}
	st := n.Stats()
	if st.Failed != 1 || st.RNRNaks != 3 {
		t.Fatalf("stats: %+v", st)
	}
	if lat <= 0 {
		t.Fatalf("RNR backoff charged nothing")
	}
	if len(n.Landings()) != 0 {
		t.Fatalf("NAKed WQE landed")
	}
	after, _, _ := sys.DMAOut(addr, 4096)
	if !bytes.Equal(snap, after) {
		t.Fatalf("NAKed WQE mutated memory")
	}
}

func TestRDMASQFullBackpressureDrains(t *testing.T) {
	sys := testSys(t)
	n, addr, _ := testNIC(t, sys, Config{QPDepth: 2, MTU: 1024})
	data := payload(8192) // 8 WQEs through a 2-deep SQ
	if _, err := n.Deposit(0, 0, data); err != nil {
		t.Fatalf("Deposit: %v", err)
	}
	got, _, _ := sys.DMAOut(addr, len(data))
	if !bytes.Equal(got, data) {
		t.Fatalf("payload mismatch")
	}
	if st := n.Stats(); st.Doorbells < 4 {
		t.Fatalf("backpressure should have rung repeatedly: %+v", st)
	}
}

func TestRDMAPreloadStagesWithoutWireTime(t *testing.T) {
	sys := testSys(t)
	n, addr, _ := testNIC(t, sys, Config{})
	data := payload(4096)
	if err := n.Preload(0, 0, data); err != nil {
		t.Fatalf("Preload: %v", err)
	}
	got, _, _ := sys.DMAOut(addr, len(data))
	if !bytes.Equal(got, data) {
		t.Fatalf("preload missing")
	}
	if st := n.Stats(); st.WirePs != 0 || st.Doorbells != 0 {
		t.Fatalf("preload occupied the wire: %+v", st)
	}
	if err := n.Preload(0, 4*4096-1, data); err == nil {
		t.Fatalf("out-of-bounds preload accepted")
	}
}

func TestRDMATraceByteIdentical(t *testing.T) {
	run := func() string {
		sys := testSys(t)
		inj := fault.New(42)
		inj.Arm(SiteDoorbell, fault.Bernoulli{Prob: 0.2})
		inj.Arm(SiteRNR, fault.Bernoulli{Prob: 0.1})
		n, _, _ := testNIC(t, sys, Config{Faults: inj, TraceOps: true})
		for i := 0; i < 32; i++ {
			n.Deposit(0, (i%4)*4096, payload(1000+i))
		}
		return n.TraceString() + inj.TraceString()
	}
	a, b := run(), run()
	if a == "" || a != b {
		t.Fatalf("same-seed NIC traces differ (%d vs %d bytes)", len(a), len(b))
	}
}

func TestRDMAErrorsTyped(t *testing.T) {
	sys := testSys(t)
	n, _, _ := testNIC(t, sys, Config{QPDepth: 1})
	if err := n.PostWrite(9, 0, payload(64)); !errors.Is(err, ErrNoQP) {
		t.Fatalf("unknown QP: %v", err)
	}
	if err := n.PostWrite(0, 0, payload(64)); err != nil {
		t.Fatalf("post: %v", err)
	}
	if err := n.PostWrite(0, 64, payload(64)); !errors.Is(err, ErrSQFull) {
		t.Fatalf("full SQ: %v", err)
	}
}
