package corun

import (
	"testing"

	"repro/internal/sim"
)

func newSys(t *testing.T, llcBytes int) *sim.System {
	t.Helper()
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params: sim.DefaultParams(), LLCBytes: llcBytes, LLCWays: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestAntagonistMakesProgress(t *testing.T) {
	sys := newSys(t, 256<<10)
	eng := sim.NewEngine()
	cfg := DefaultConfig(sys)
	cfg.Instances = 2
	cfg.WorkingSetBytes = 1 << 20
	a, err := Start(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(1 * sim.Ms)
	a.BeginMeasurement()
	eng.RunUntil(5 * sim.Ms)
	if a.OpsPerSecond() <= 0 {
		t.Fatal("antagonist made no progress")
	}
}

func TestAntagonistThrashesLLC(t *testing.T) {
	sys := newSys(t, 256<<10)
	eng := sim.NewEngine()
	cfg := DefaultConfig(sys)
	cfg.Instances = 4
	cfg.WorkingSetBytes = 2 << 20 // 8MB total >> 256KB LLC
	if _, err := Start(eng, cfg); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(2 * sim.Ms)
	if sys.MemoryBytesMoved() == 0 {
		t.Fatal("no DRAM traffic from antagonist")
	}
	st := sys.Hier.LLC.Stats()
	if mr := st.MissRate(); mr < 0.5 {
		t.Fatalf("antagonist miss rate %.2f, want high", mr)
	}
}

func TestSmallerLLCSlowsAntagonist(t *testing.T) {
	run := func(llc int) float64 {
		sys := newSys(t, llc)
		eng := sim.NewEngine()
		cfg := DefaultConfig(sys)
		cfg.Instances = 2
		cfg.WorkingSetBytes = 1 << 20
		a, err := Start(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(1 * sim.Ms)
		a.BeginMeasurement()
		eng.RunUntil(6 * sim.Ms)
		return a.OpsPerSecond()
	}
	big := run(4 << 20) // working set fits: mostly hits
	small := run(64 << 10)
	if small >= big {
		t.Fatalf("smaller LLC did not slow the antagonist: %.0f vs %.0f", small, big)
	}
}

func TestDefaultsApplied(t *testing.T) {
	sys := newSys(t, 256<<10)
	eng := sim.NewEngine()
	a, err := Start(eng, Config{Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.bases) != 1 {
		t.Fatalf("instances = %d, want defaulted 1", len(a.bases))
	}
	if a.OpsPerSecond() != 0 {
		t.Fatal("ops before measurement should be 0")
	}
}
