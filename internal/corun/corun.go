// Package corun models the cache-intensive co-runner of the paper's
// performance-isolation experiment (§VII-C): SPEC CPU2017 505.mcf, whose
// role in the evaluation is to thrash the shared LLC at a calibrated
// intensity while its own progress is measured. The model is a
// pointer-chasing antagonist: batches of dependent reads over a working
// set far larger than the LLC, interleaved on the shared memory system
// through the discrete-event engine.
package corun

import (
	"math/rand"

	"repro/internal/sim"
)

// Config tunes one antagonist instance.
type Config struct {
	Sys *sim.System
	// Instances is how many copies run (the paper co-runs 10 mcf
	// instances on 10 cores).
	Instances int
	// WorkingSetBytes per instance; mcf's resident set is ~350MB on the
	// testbed, scaled here to dominate the modelled LLC.
	WorkingSetBytes int
	// BatchReads is the number of dependent loads per scheduling quantum.
	BatchReads int
	// ComputeNsPerRead is the non-memory work between loads (mcf is
	// memory-bound: small).
	ComputeNsPerRead int64
	Seed             int64
}

// DefaultConfig sizes the antagonist against the given system.
func DefaultConfig(sys *sim.System) Config {
	return Config{
		Sys: sys, Instances: 10,
		WorkingSetBytes:  4 << 20,
		BatchReads:       64,
		ComputeNsPerRead: 4,
		Seed:             7,
	}
}

// Antagonist is the running co-runner set.
type Antagonist struct {
	cfg   Config
	eng   *sim.Engine
	bases []uint64
	rngs  []*rand.Rand

	measuring bool
	ops       uint64
	fromPs    int64
}

// Start allocates working sets and schedules the instances on the
// engine. It must be called before the engine runs.
func Start(eng *sim.Engine, cfg Config) (*Antagonist, error) {
	if cfg.Instances <= 0 {
		cfg.Instances = 1
	}
	if cfg.WorkingSetBytes <= 0 {
		cfg.WorkingSetBytes = 4 << 20
	}
	if cfg.BatchReads <= 0 {
		cfg.BatchReads = 64
	}
	a := &Antagonist{cfg: cfg, eng: eng}
	for i := 0; i < cfg.Instances; i++ {
		base, err := cfg.Sys.AllocPlain(cfg.WorkingSetBytes)
		if err != nil {
			return nil, err
		}
		a.bases = append(a.bases, base)
		a.rngs = append(a.rngs, rand.New(rand.NewSource(cfg.Seed+int64(i))))
		inst := i
		eng.At(eng.Now(), func() { a.batch(inst) })
	}
	return a, nil
}

// batch executes one quantum of dependent loads and reschedules itself.
func (a *Antagonist) batch(inst int) {
	var line [64]byte
	var wall int64
	rng := a.rngs[inst]
	lines := uint64(a.cfg.WorkingSetBytes / 64)
	for r := 0; r < a.cfg.BatchReads; r++ {
		addr := a.bases[inst] + (rng.Uint64()%lines)*64
		lat, err := a.cfg.Sys.Hier.Read64(10+inst, addr, line[:])
		if err != nil {
			return // working set unmapped: stop this instance
		}
		wall += lat + a.cfg.ComputeNsPerRead*sim.Ns
	}
	if a.measuring {
		a.ops += uint64(a.cfg.BatchReads)
	}
	a.eng.After(wall, func() { a.batch(inst) })
}

// BeginMeasurement zeroes progress counters (after warmup).
func (a *Antagonist) BeginMeasurement() {
	a.measuring = true
	a.ops = 0
	a.fromPs = a.eng.Now()
}

// OpsPerSecond returns measured progress across all instances.
func (a *Antagonist) OpsPerSecond() float64 {
	elapsed := a.eng.Now() - a.fromPs
	if elapsed <= 0 {
		return 0
	}
	return float64(a.ops) / (float64(elapsed) * 1e-12)
}
