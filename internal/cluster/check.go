// The linearizability checker: replays the router's recorded operation
// history and inspects the final replica state, exploiting the workload
// shape — every key is a single-writer register with strictly
// increasing versions — to check linearizability in O(n log n) instead
// of search:
//
//   - No lost acked write: every client-acked write's WID must sit in
//     the committed prefix of every member of its group (run the
//     checker after partitions heal and a settle window lets the
//     primaries catch everyone up).
//   - Prefix consistency: all members of a group agree on the common
//     committed prefix, entry for entry.
//   - Read validity: an observed version must belong to a write invoked
//     before the read acked (values cannot come from the future).
//   - Read freshness: a read must observe at least the highest version
//     whose write acked before the read was invoked (the real-time bound
//     that makes primary-lease reads linearizable, not merely
//     sequential).
//   - Monotonic reads: across ALL clients, a read invoked after another
//     read acked can never observe an older version (no causality
//     reversal through a stale ex-primary).
//   - Election safety: at most one leader per (group, term), and after
//     healing each group has a leader again (liveness).
package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// CheckReport is the canonical verdict over one run.
type CheckReport struct {
	Ops         int
	AckedWrites int
	AckedReads  int
	Unacked     int
	// Violations lists every invariant breach in a canonical order,
	// capped at maxViolations (the count keeps the true total).
	Violations     []string
	ViolationCount int
}

const maxViolations = 32

// Ok reports whether every invariant held.
func (r CheckReport) Ok() bool { return r.ViolationCount == 0 }

// String renders the canonical report — the byte-compared artifact of
// the chaos determinism gates.
func (r CheckReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ops=%d acked_writes=%d acked_reads=%d unacked=%d violations=%d\n",
		r.Ops, r.AckedWrites, r.AckedReads, r.Unacked, r.ViolationCount)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  VIOLATION %s\n", v)
	}
	return b.String()
}

func (r *CheckReport) violate(format string, args ...interface{}) {
	r.ViolationCount++
	if len(r.Violations) < maxViolations {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// Check runs every invariant against the recorded history and the
// replicas' final state. Call it only after the fault schedule has
// healed and a settle window has run.
func (c *Cluster) Check() CheckReport {
	var rep CheckReport
	hist := c.rt.history
	rep.Ops = len(hist)
	for i := range hist {
		op := &hist[i]
		switch {
		case op.AckPs < 0:
			rep.Unacked++
		case op.Kind == OpWrite:
			rep.AckedWrites++
		default:
			rep.AckedReads++
		}
	}
	c.checkDurability(&rep)
	c.checkPrefixes(&rep)
	c.checkReads(&rep)
	c.checkElections(&rep)
	return rep
}

// checkDurability: no client-acked write may be missing from any
// member's committed prefix.
func (c *Cluster) checkDurability(rep *CheckReport) {
	hist := c.rt.history
	for i := range hist {
		op := &hist[i]
		if op.Kind != OpWrite || op.AckPs < 0 {
			continue
		}
		for _, m := range c.groups[op.Group] {
			r := c.nodes[m].reps[op.Group]
			idx, ok := r.widIdx[op.WID]
			if !ok || idx > r.commit {
				rep.violate("lost-acked-write op=%d wid=%d key=%d group=%d node=%d (acked at %dps)",
					op.ID, op.WID, op.Key, op.Group, m, op.AckPs)
			}
		}
	}
}

// checkPrefixes: every pair of members agrees on the shared committed
// prefix, and no replica ever truncated below its commit point.
func (c *Cluster) checkPrefixes(rep *CheckReport) {
	for g, members := range c.groups {
		ref := c.nodes[members[0]].reps[g]
		for _, m := range members[1:] {
			r := c.nodes[m].reps[g]
			n := ref.commit
			if r.commit < n {
				n = r.commit
			}
			for i := 0; i < n; i++ {
				if ref.log[i] != r.log[i] {
					rep.violate("divergent-committed-prefix group=%d idx=%d node=%d has {t%d k%d v%d} node=%d has {t%d k%d v%d}",
						g, i+1, members[0], ref.log[i].Term, ref.log[i].Key, ref.log[i].Ver,
						m, r.log[i].Term, r.log[i].Key, r.log[i].Ver)
					break
				}
			}
		}
		for _, m := range members {
			if tb := c.nodes[m].reps[g].truncBelowCommit; tb > 0 {
				rep.violate("truncate-below-commit group=%d node=%d count=%d", g, m, tb)
			}
		}
	}
}

// checkReads: validity, freshness, and global monotonicity per key.
func (c *Cluster) checkReads(rep *CheckReport) {
	hist := c.rt.history
	type writeRec struct{ invokePs, ackPs, ver int64 }
	writesByWID := map[uint64]writeRec{}
	ackedByKey := map[int][]writeRec{}
	for i := range hist {
		op := &hist[i]
		if op.Kind != OpWrite {
			continue
		}
		w := writeRec{invokePs: op.InvokePs, ackPs: op.AckPs, ver: op.Ver}
		writesByWID[op.WID] = w
		if op.AckPs >= 0 {
			ackedByKey[op.Key] = append(ackedByKey[op.Key], w)
		}
	}
	readsByKey := map[int][]*Op{}
	for i := range hist {
		op := &hist[i]
		if op.Kind == OpRead && op.AckPs >= 0 {
			readsByKey[op.Key] = append(readsByKey[op.Key], op)
		}
	}
	keys := make([]int, 0, len(readsByKey))
	for k := range readsByKey {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		reads := readsByKey[k]
		// Validity: the observed write must exist and have been invoked
		// before the read completed.
		for _, rd := range reads {
			if rd.ObsVer == 0 {
				continue // observed the empty register
			}
			w, ok := writesByWID[rd.ObsWID]
			if !ok || w.ver != rd.ObsVer {
				rep.violate("read-unknown-value op=%d key=%d obs_ver=%d obs_wid=%d", rd.ID, k, rd.ObsVer, rd.ObsWID)
				continue
			}
			if w.invokePs > rd.AckPs {
				rep.violate("read-from-future op=%d key=%d obs_ver=%d write invoked %dps after read ack", rd.ID, k, rd.ObsVer, w.invokePs-rd.AckPs)
			}
		}
		// Freshness: two-pointer sweep over writes acked before each
		// read's invocation. Versions per key increase with invocation
		// order (the single-writer discipline), so the floor is a max.
		writes := ackedByKey[k]
		sort.Slice(writes, func(a, b int) bool { return writes[a].ackPs < writes[b].ackPs })
		byInvoke := append([]*Op(nil), reads...)
		sort.Slice(byInvoke, func(a, b int) bool { return byInvoke[a].InvokePs < byInvoke[b].InvokePs })
		wi, floor := 0, int64(0)
		for _, rd := range byInvoke {
			for wi < len(writes) && writes[wi].ackPs <= rd.InvokePs {
				if writes[wi].ver > floor {
					floor = writes[wi].ver
				}
				wi++
			}
			if rd.ObsVer < floor {
				rep.violate("stale-read op=%d key=%d obs_ver=%d floor=%d", rd.ID, k, rd.ObsVer, floor)
			}
		}
		// Monotonic reads, globally: sweep reads by invocation, folding
		// in the observations of reads that acked before.
		byAck := append([]*Op(nil), reads...)
		sort.Slice(byAck, func(a, b int) bool { return byAck[a].AckPs < byAck[b].AckPs })
		ri, seen := 0, int64(0)
		for _, rd := range byInvoke {
			for ri < len(byAck) && byAck[ri].AckPs <= rd.InvokePs {
				if byAck[ri].ObsVer > seen {
					seen = byAck[ri].ObsVer
				}
				ri++
			}
			if rd.ObsVer < seen {
				rep.violate("non-monotonic-read op=%d key=%d obs_ver=%d earlier read saw %d", rd.ID, k, rd.ObsVer, seen)
			}
		}
	}
}

// checkElections: at most one leader per (group, term) in the final
// state, and — after healing — at least one leader per group.
func (c *Cluster) checkElections(rep *CheckReport) {
	for g, members := range c.groups {
		leaders := 0
		byTerm := map[int64]int{}
		for _, m := range members {
			r := c.nodes[m].reps[g]
			if r.state == leader {
				leaders++
				byTerm[r.term]++
				if byTerm[r.term] > 1 {
					rep.violate("split-brain group=%d term=%d", g, r.term)
				}
			}
		}
		if leaders == 0 {
			rep.violate("no-leader group=%d after heal+settle", g)
		}
	}
}
