// The router is the cluster's client-side front-end, living alone on
// shard 0: a closed-loop population of client connections issuing
// single-writer-register operations (each connection writes only its own
// key, with strictly increasing versions; reads target any key), routing
// every operation to the believed primary of the key's replica group,
// and following redirects / retrying timeouts until the operation acks.
//
// The router is also the linearizability witness: it records every
// operation's invocation and ack timestamps plus the observed
// (version, write-id) — the complete history the checker in check.go
// replays. Write retries reuse the original write-id and version, so a
// timed-out-but-committed write stays idempotent at the replicas and the
// history stays single-writer-monotone per key.
package cluster

import (
	"math/rand"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// OpKind discriminates history operations.
type OpKind uint8

// Operation kinds.
const (
	OpWrite OpKind = iota
	OpRead
)

// String names the kind.
func (k OpKind) String() string {
	if k == OpWrite {
		return "write"
	}
	return "read"
}

type respKind uint8

const (
	respOK respKind = iota
	respRedirect
)

// Op is one client operation in the recorded history.
type Op struct {
	ID    uint64
	Conn  int
	Kind  OpKind
	Key   int
	Group int
	// Ver/WID identify a write (assigned at invocation, reused across
	// retries); for reads they are zero.
	Ver int64
	WID uint64
	// InvokePs is the first attempt's start; AckPs is the ack time, -1
	// if the operation never completed before the run ended.
	InvokePs int64
	AckPs    int64
	// ObsVer/ObsWID are the value a read observed (zero = empty key).
	ObsVer  int64
	ObsWID  uint64
	Retries int
}

type router struct {
	c   *Cluster
	eng *sim.Engine
	rng *rand.Rand

	tr      *telemetry.Tracer
	opTrack telemetry.TrackID

	nextOp  uint64
	nextWID uint64
	history []Op    // history[id-1]; never reordered
	nextVer []int64 // per key (= per connection)

	// leaderHint[g] is a position cursor into the group's member list;
	// redirect hints snap it, timeouts advance it round-robin.
	leaderHint []int

	stopped     bool // Quiesce: no new operations are invoked
	measuring   bool
	measureFrom int64
	acked       uint64
	ackedWrites uint64
	ackedReads  uint64
	timeouts    uint64
	retries     uint64
	redirects   uint64
}

func newRouter(c *Cluster) *router {
	rt := &router{
		c:          c,
		eng:        c.se.Shard(0),
		rng:        rand.New(rand.NewSource(c.cfg.Seed + 7_777_777)),
		nextVer:    make([]int64, c.cfg.Conns),
		leaderHint: make([]int, len(c.groups)),
		tr:         c.tracers[0],
	}
	rt.opTrack = rt.tr.Track("ops")
	return rt
}

// Start opens the closed loop on every client connection.
func (rt *router) Start() {
	for conn := 0; conn < rt.c.cfg.Conns; conn++ {
		rt.issue(conn)
	}
}

func (rt *router) BeginMeasurement() {
	rt.measuring = true
	rt.measureFrom = rt.eng.Now()
	rt.acked, rt.ackedWrites, rt.ackedReads = 0, 0, 0
}

// issue invokes connection conn's next operation: a write to its own
// key with probability WriteFrac, otherwise a read of a uniformly drawn
// key.
func (rt *router) issue(conn int) {
	if rt.stopped {
		return
	}
	now := rt.eng.Now()
	kind, key := OpRead, conn
	if rt.rng.Float64() < rt.c.cfg.WriteFrac {
		kind = OpWrite
	} else {
		key = rt.rng.Intn(rt.c.cfg.Conns)
	}
	rt.nextOp++
	op := Op{
		ID: rt.nextOp, Conn: conn, Kind: kind, Key: key,
		Group: key % len(rt.c.groups), InvokePs: now, AckPs: -1,
	}
	if kind == OpWrite {
		rt.nextVer[conn]++
		rt.nextWID++
		op.Ver, op.WID = rt.nextVer[conn], rt.nextWID
	}
	rt.history = append(rt.history, op)
	rt.tr.AsyncBegin(rt.opTrack, "op", op.ID, now)
	rt.attempt(op.ID, 0)
}

// attempt sends try-th attempt of operation id to the believed primary
// and arms its timeout. Exactly one timeout watches each attempt; stale
// watchers disarm themselves via the attempt counter.
func (rt *router) attempt(id uint64, try int) {
	op := &rt.history[id-1]
	if op.AckPs >= 0 {
		return
	}
	op.Retries = try
	g := op.Group
	members := rt.c.groups[g]
	target := members[rt.leaderHint[g]%len(members)]
	n := rt.c.nodes[target]
	kind, key, ver, wid, conn := op.Kind, op.Key, op.Ver, op.WID, op.Conn
	bytes := ctlBytes
	if kind == OpWrite {
		bytes = rt.c.cfg.MsgSize
	}
	rt.c.net.Send(0, n.addr, bytes, func() {
		if kind == OpWrite {
			n.onClientWrite(g, key, ver, wid, conn, id)
		} else {
			n.onClientRead(g, key, conn, id)
		}
	})
	rt.eng.After(rt.c.cfg.OpTimeoutPs, func() {
		op := &rt.history[id-1]
		if op.AckPs >= 0 || op.Retries != try {
			return
		}
		rt.timeouts++
		rt.leaderHint[g]++ // the believed primary is unresponsive
		rt.retries++
		rt.attempt(id, try+1)
	})
}

// onResp receives a node's reply on shard 0. Late duplicates (an old
// attempt's reply racing the retry that superseded it) are dropped by
// the first-ack-wins guard.
func (rt *router) onResp(id uint64, kind respKind, hint int, ver int64, wid uint64) {
	op := &rt.history[id-1]
	if op.AckPs >= 0 {
		return
	}
	now := rt.eng.Now()
	if kind == respRedirect {
		rt.redirects++
		g := op.Group
		members := rt.c.groups[g]
		// A usable hint always pins the cursor on the hinted member —
		// even when the cursor already points there. Treating an
		// equal-position hint as stale looks harmless with one op in
		// flight, but two ops sharing the cursor then ping-pong it: the
		// first snaps onto the true leader, the second's identical hint
		// reads as "that node bounced me" and advances the cursor off it
		// again, and no attempt ever lands on the leader. Nodes that
		// genuinely cannot serve never hint themselves (replyRedirect),
		// and a hint at a dead node resolves through the op timeout.
		moved := false
		if hint >= 0 {
			for pos, m := range members {
				if m == hint {
					rt.leaderHint[g] = pos
					moved = true
					break
				}
			}
		}
		if !moved {
			rt.leaderHint[g]++ // no usable hint: probe the next member
		}
		try := op.Retries
		rt.eng.After(rt.c.cfg.RetryPs, func() {
			op := &rt.history[id-1]
			if op.AckPs >= 0 || op.Retries != try {
				return
			}
			rt.retries++
			rt.attempt(id, try+1)
		})
		return
	}
	op.AckPs = now
	op.ObsVer, op.ObsWID = ver, wid
	rt.tr.AsyncEnd(rt.opTrack, "op", id, now)
	if rt.measuring {
		rt.acked++
		if op.Kind == OpWrite {
			rt.ackedWrites++
		} else {
			rt.ackedReads++
		}
	}
	conn := op.Conn
	if think := rt.c.cfg.ThinkPs; think > 0 {
		rt.eng.After(think, func() { rt.issue(conn) })
	} else {
		rt.eng.At(now, func() { rt.issue(conn) })
	}
}
