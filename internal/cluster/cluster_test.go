package cluster

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func testConfig(seed int64) Config {
	return Config{
		Nodes: 3, Conns: 6, MsgSize: 1024, Workers: 2, NodeConns: 2,
		FileKind: corpus.Text, Seed: seed, Trace: true, ExecWorkers: 1,
	}
}

// TestClusterServesLinearizably is the smoke test: a healthy 3-node
// cluster elects primaries, serves a read/write mix, and the full
// checker passes over the recorded history.
func TestClusterServesLinearizably(t *testing.T) {
	c, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Run(3*sim.Ms, 10*sim.Ms)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ops == 0 || m.AckedWrites == 0 || m.AckedReads == 0 {
		t.Fatalf("cluster served nothing: %+v", m)
	}
	if m.Promotions < uint64(len(c.groups)) {
		t.Fatalf("promotions %d < groups %d: some group never elected a primary", m.Promotions, len(c.groups))
	}
	c.Quiesce(2 * sim.Ms)
	if rep := c.Check(); !rep.Ok() {
		t.Fatalf("checker failed on a healthy run:\n%s", rep)
	}
	// Replication work crossed the fabric.
	if m.Net.Delivered == 0 || m.Net.WireBytes == 0 {
		t.Fatalf("no fabric traffic: %+v", m.Net)
	}
}

// TestClusterFailover kills the initial primary mid-run: backups must
// promote, clients must keep getting acks afterwards, the node must
// catch up after rejoining, and no acked write may be lost.
func TestClusterFailover(t *testing.T) {
	c, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	const killAt, rejoinAt, end = 6 * sim.Ms, 14 * sim.Ms, 24 * sim.Ms
	c.KillAt(0, killAt)
	c.RejoinAt(0, rejoinAt)
	c.Start()
	c.RunUntil(3 * sim.Ms)
	c.BeginMeasurement()
	c.RunUntil(end)
	m, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if m.Ops == 0 {
		t.Fatal("no operations acked")
	}
	// Progress after the kill: some write must have acked while node 0
	// was down — served by a promoted backup.
	during := 0
	for _, op := range c.History() {
		if op.Kind == OpWrite && op.AckPs > killAt+2*sim.Ms && op.AckPs < rejoinAt {
			during++
		}
	}
	if during == 0 {
		t.Fatal("no writes acked while the killed node was down: failover did not happen")
	}
	c.Quiesce(2 * sim.Ms)
	if rep := c.Check(); !rep.Ok() {
		t.Fatalf("checker failed across failover:\n%s", rep)
	}
	// The rejoined node caught up: its committed logs match the others
	// (checkDurability already proves acked writes reached node 0).
	for g := range c.groups {
		r0 := c.nodes[0].reps[g]
		if r0.commit == 0 {
			t.Fatalf("group %d: rejoined node 0 never caught up", g)
		}
	}
}

// TestClusterDrainTransfersLeadership drains the node holding every
// initial leadership: the leaderships must move without losing a single
// acked write, and the drained node must stop serving.
func TestClusterDrain(t *testing.T) {
	c, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	c.DrainAt(0, 5*sim.Ms)
	if _, err := c.Run(3*sim.Ms, 12*sim.Ms); err != nil {
		t.Fatal(err)
	}
	c.Quiesce(2 * sim.Ms)
	if rep := c.Check(); !rep.Ok() {
		t.Fatalf("checker failed across drain:\n%s", rep)
	}
	for g := range c.groups {
		if c.nodes[0].reps[g].state == leader {
			t.Fatalf("group %d: drained node 0 still leads", g)
		}
	}
}

// TestClusterAsymmetricPartition cuts the router->primary direction
// only (requests lost, responses deliverable): the fabric retransmits
// through the window and the checker holds.
func TestClusterAsymmetricPartition(t *testing.T) {
	cfg := testConfig(4)
	cfg.NetFaults = func(ep int) *fault.Injector {
		inj := fault.New(400 + int64(ep))
		inj.Arm(SiteNetCut, fault.Partition{
			FromPs: 5 * sim.Ms, ToPs: 7 * sim.Ms,
			A: []int{0}, B: []int{1}, OneWay: true,
		})
		return inj
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Run(3*sim.Ms, 12*sim.Ms)
	if err != nil {
		t.Fatal(err)
	}
	if m.Net.Dropped == 0 {
		t.Fatal("partition never dropped a message")
	}
	c.Quiesce(2 * sim.Ms)
	if rep := c.Check(); !rep.Ok() {
		t.Fatalf("checker failed across asymmetric partition:\n%s", rep)
	}
}

// clusterFingerprint renders one run's deterministic artifacts — the
// checker report, the metrics, and the merged Perfetto trace — for
// byte-identity comparison across execution schedules.
func clusterFingerprint(t *testing.T, execWorkers int) []byte {
	t.Helper()
	cfg := testConfig(5)
	cfg.ExecWorkers = execWorkers
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.KillAt(1, 5*sim.Ms)
	c.RejoinAt(1, 9*sim.Ms)
	m, err := c.Run(3*sim.Ms, 10*sim.Ms)
	if err != nil {
		t.Fatal(err)
	}
	c.Quiesce(2 * sim.Ms)
	var b bytes.Buffer
	fmt.Fprintf(&b, "ops=%d w=%d r=%d to=%d rt=%d rd=%d promo=%d\n",
		m.Ops, m.AckedWrites, m.AckedReads, m.Timeouts, m.Retries, m.Redirects, m.Promotions)
	fmt.Fprintf(&b, "net=%+v\n", m.Net)
	fmt.Fprintf(&b, "epochs=%d msgs=%d events=%d\n", m.Epochs, m.SentMsgs, m.Processed)
	b.WriteString(c.Check().String())
	reg := telemetry.NewRegistry()
	c.RegisterMetrics(reg)
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if err := c.MergedTrace().WritePerfetto(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestClusterDeterministicAcrossWorkers is the cluster determinism
// gate: serial reference execution, parallel execution, and a different
// GOMAXPROCS produce byte-identical traces, metrics, and reports even
// across a kill/rejoin schedule.
func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	ref := clusterFingerprint(t, 1)
	if got := clusterFingerprint(t, 4); !bytes.Equal(got, ref) {
		t.Fatalf("parallel cluster run diverged from serial reference (%d vs %d bytes)", len(got), len(ref))
	}
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	if got := clusterFingerprint(t, 0); !bytes.Equal(got, ref) {
		t.Fatal("GOMAXPROCS=2 cluster run diverged from serial reference")
	}
}

// TestClusterRejectsBadConfigs pins the constructor guard rails.
func TestClusterRejectsBadConfigs(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"lease over election": func(c *Config) { c.ElectionPs = 100 * sim.Us; c.LeasePs = 200 * sim.Us },
		"heartbeat under rtt": func(c *Config) { c.HeartbeatPs = sim.Us; c.Net.PropPs = 2 * sim.Us },
	} {
		cfg := testConfig(6)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
}
