// Per-node replication state: a Raft-lite primary-backup protocol per
// replica group. One node holds a replica struct for every group whose
// member set includes it; all of a node's protocol state lives on that
// node's shard and is only ever touched by shard-local events (message
// closures delivered by the fabric, timers on the node's engine).
//
// Protocol shape (DESIGN.md §15):
//
//   - Terms + quorum votes elect the primary; vote grant requires the
//     candidate's log to be at least as up to date ((lastTerm, lastIdx)
//     lexicographic), so an acked — majority-replicated — write can
//     never be absent from a new primary's log.
//   - Writes append at the primary, replicate via Append messages with
//     the (prevIdx, prevTerm) consistency check, and commit (and ack to
//     the client) once a majority holds them in the primary's term. A
//     fresh primary appends a no-op entry to commit its inherited tail
//     before serving.
//   - Reads are served at the primary under a heartbeat lease: the
//     quorum-acked heartbeat send timestamp plus LeasePs, paired with
//     voter-side stickiness (a follower refuses votes for LeasePs after
//     valid leader contact), guarantees the old primary's lease expires
//     before a new primary can be elected — simulated clocks are exact,
//     so the argument needs no skew margin.
//   - Drain transfers leadership (TimeoutNow to the best-caught-up
//     backup, whose votes bypass stickiness) after the draining node
//     stops serving; kill freezes the node (handlers drop everything)
//     while its durable state survives for rejoin + catch-up.
package cluster

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// logEnt is one replicated write. Key < 0 marks a term-opening no-op.
type logEnt struct {
	Term int64
	Key  int
	Ver  int64
	WID  uint64
}

type appliedVal struct {
	Ver int64
	WID uint64
}

type pendingAck struct {
	opID    uint64
	startPs int64
}

// Replica roles.
const (
	follower = int8(iota)
	candidate
	leader
)

type node struct {
	c    *Cluster
	id   int // node index 0..Nodes-1
	addr int // fabric endpoint = id+1 (0 is the router)
	eng  *sim.Engine
	sys  *sim.System
	fl   *fleet.Fleet
	srv  *server.Server
	inj  *fault.Injector // data-plane (system) injector, may be nil
	nInj *fault.Injector // net-plane injector, may be nil

	tr        *telemetry.Tracer
	replTrack telemetry.TrackID
	ctlTrack  telemetry.TrackID

	down     bool
	draining bool

	reps    map[int]*replica
	repList []*replica // group order — the only iteration order used

	// Counters (owned by this shard; aggregated post-run).
	promotions uint64
	redirects  uint64
	reads      uint64
	writes     uint64
}

type replica struct {
	n       *node
	group   int
	members []int // node ids, ascending
	selfPos int

	state     int8
	term      int64
	votedTerm int64
	votes     uint32
	xfer      bool // current candidacy is a leadership transfer
	leader    int  // last known leader node id, -1 unknown

	log     []logEnt
	commit  int // committed prefix length (1-based index of last committed)
	applied map[int]appliedVal
	widIdx  map[uint64]int // write id -> 1-based log index

	// Leader state.
	next      []int   // per member pos: next 1-based index to send
	match     []int   // per member pos: highest known replicated index
	ackSendTs []int64 // per member pos: latest acked heartbeat send ts
	pending   map[int][]pendingAck

	stickyUntil int64
	electionAt  int64
	rng         *rand.Rand

	// truncBelowCommit counts (impossible) truncations under the commit
	// point — a defensive invariant surfaced by the chaos checker.
	truncBelowCommit uint64
}

func (r *replica) majority() int { return len(r.members)/2 + 1 }

func (r *replica) pos(nodeID int) int {
	for i, m := range r.members {
		if m == nodeID {
			return i
		}
	}
	return -1
}

func (r *replica) lastTermIdx() (int64, int) {
	if len(r.log) == 0 {
		return 0, 0
	}
	return r.log[len(r.log)-1].Term, len(r.log)
}

// electionDelay staggers candidacies by member position plus a seeded
// jitter, so elections converge without split votes and identically
// across runs.
func (r *replica) electionDelay() int64 {
	base := r.n.c.cfg.ElectionPs
	step := base / 8
	return base + int64(r.selfPos)*step + r.rng.Int63n(step)
}

// tickElection is the follower's failure detector: a single self
// re-arming timer chain per replica. Down or draining nodes stay quiet
// but keep the chain alive so a rejoined node resumes detection.
func (r *replica) tickElection() {
	n := r.n
	now := n.eng.Now()
	if n.down || n.draining || r.state == leader {
		r.electionAt = now + r.electionDelay()
		n.eng.After(r.electionAt-now, r.tickElection)
		return
	}
	if now < r.electionAt {
		n.eng.After(r.electionAt-now, r.tickElection)
		return
	}
	r.startElection(false)
	r.electionAt = now + r.electionDelay()
	n.eng.After(r.electionAt-now, r.tickElection)
}

func (r *replica) startElection(xfer bool) {
	n := r.n
	r.state = candidate
	r.term++
	r.votedTerm = r.term
	r.votes = 1 << uint(r.selfPos)
	r.xfer = xfer
	r.leader = -1
	n.tr.Instant(n.replTrack, "election", n.eng.Now())
	if int(popcount(r.votes)) >= r.majority() {
		r.becomeLeader()
		return
	}
	term, lastT, lastI := r.term, int64(0), 0
	lastT, lastI = r.lastTermIdx()
	g, from := r.group, n.id
	for _, m := range r.members {
		if m == n.id {
			continue
		}
		mn := n.c.nodes[m]
		n.c.net.Send(n.addr, mn.addr, ctlBytes, func() {
			mn.onVoteReq(g, term, lastT, lastI, from, xfer)
		})
	}
}

func popcount(v uint32) int {
	c := 0
	for ; v != 0; v &= v - 1 {
		c++
	}
	return c
}

func (n *node) onVoteReq(g int, term, lastT int64, lastI, from int, xfer bool) {
	if n.down {
		return
	}
	r := n.reps[g]
	now := n.eng.Now()
	if term > r.term {
		r.stepDown(term)
	}
	myT, myI := r.lastTermIdx()
	upToDate := lastT > myT || (lastT == myT && lastI >= myI)
	granted := term == r.term && r.votedTerm < term && upToDate &&
		(xfer || now >= r.stickyUntil)
	if granted {
		r.votedTerm = term
		r.electionAt = now + r.electionDelay()
	}
	cn := n.c.nodes[from]
	respTerm := r.term
	n.c.net.Send(n.addr, cn.addr, ctlBytes, func() {
		cn.onVoteResp(g, respTerm, granted, n.id)
	})
}

func (n *node) onVoteResp(g int, term int64, granted bool, from int) {
	if n.down {
		return
	}
	r := n.reps[g]
	if term > r.term {
		r.stepDown(term)
		return
	}
	if r.state != candidate || term != r.term || !granted {
		return
	}
	r.votes |= 1 << uint(r.pos(from))
	if popcount(r.votes) >= r.majority() {
		r.becomeLeader()
	}
}

func (r *replica) becomeLeader() {
	n := r.n
	now := n.eng.Now()
	r.state = leader
	r.leader = n.id
	n.promotions++
	n.tr.Instant(n.replTrack, "promote", now)
	r.next = make([]int, len(r.members))
	r.match = make([]int, len(r.members))
	r.ackSendTs = make([]int64, len(r.members))
	for i := range r.members {
		r.next[i] = len(r.log) + 1
		r.ackSendTs[i] = math.MinInt64 / 4
	}
	r.pending = map[int][]pendingAck{}
	// A no-op entry in the new term commits the inherited tail before
	// any read can observe it (the Raft §8 argument).
	r.append(logEnt{Term: r.term, Key: -1})
	r.broadcastAppend()
	r.advanceCommit()
	term := r.term
	r.hbTick(term)
}

// hbTick drives heartbeats and protocol-level retransmission while this
// node leads this term; the chain dies on any term/role change.
func (r *replica) hbTick(term int64) {
	n := r.n
	if n.down || r.state != leader || r.term != term {
		return
	}
	for pos := range r.members {
		if pos != r.selfPos {
			r.sendAppendTo(pos)
		}
	}
	n.eng.After(n.c.cfg.HeartbeatPs, func() { r.hbTick(term) })
}

func (r *replica) append(ent logEnt) {
	r.log = append(r.log, ent)
	if ent.Key >= 0 {
		r.widIdx[ent.WID] = len(r.log)
	}
	if r.match != nil { // leader-only bookkeeping
		r.match[r.selfPos] = len(r.log)
	}
}

func (r *replica) broadcastAppend() {
	for pos := range r.members {
		if pos != r.selfPos {
			r.sendAppendTo(pos)
		}
	}
}

const (
	ctlBytes      = 64 // votes, acks, heartbeats, redirects
	maxAppendEnts = 4
)

// sendAppendTo ships the next batch (possibly empty = pure heartbeat)
// to one follower, with the (prevIdx, prevTerm) consistency check.
func (r *replica) sendAppendTo(pos int) {
	n := r.n
	prevIdx := r.next[pos] - 1
	var prevTerm int64
	if prevIdx > 0 && prevIdx <= len(r.log) {
		prevTerm = r.log[prevIdx-1].Term
	}
	hi := prevIdx + maxAppendEnts
	if hi > len(r.log) {
		hi = len(r.log)
	}
	var ents []logEnt
	bytes := ctlBytes
	if hi > prevIdx {
		ents = append(ents, r.log[prevIdx:hi]...)
		for _, e := range ents {
			if e.Key >= 0 {
				bytes += n.c.cfg.MsgSize
			} else {
				bytes += 16
			}
		}
	}
	g, term, commit, sentPs, from := r.group, r.term, r.commit, n.eng.Now(), n.id
	fn := n.c.nodes[r.members[pos]]
	n.c.net.Send(n.addr, fn.addr, bytes, func() {
		fn.onAppend(g, term, prevIdx, prevTerm, ents, commit, sentPs, from)
	})
}

func (n *node) onAppend(g int, term int64, prevIdx int, prevTerm int64, ents []logEnt, commit int, sentPs int64, from int) {
	if n.down {
		return
	}
	r := n.reps[g]
	now := n.eng.Now()
	if term > r.term {
		r.stepDown(term)
	}
	ln := n.c.nodes[from]
	if term < r.term {
		respTerm := r.term
		n.c.net.Send(n.addr, ln.addr, ctlBytes, func() {
			ln.onAppendAck(g, respTerm, false, 0, len(r.log)+1, sentPs, n.id)
		})
		return
	}
	// Valid leader contact: reset the failure detector and the vote
	// stickiness window that underpins the read lease.
	r.leader = from
	if r.state == candidate {
		r.state = follower
	}
	r.electionAt = now + r.electionDelay()
	if s := now + n.c.cfg.LeasePs; s > r.stickyUntil {
		r.stickyUntil = s
	}

	success := false
	matchIdx, hint := 0, 0
	switch {
	case prevIdx > len(r.log): // gap
		hint = len(r.log) + 1
	case prevIdx > 0 && r.log[prevIdx-1].Term != prevTerm: // divergence
		hint = prevIdx
		if hint > r.commit+1 {
			// skip back past the divergent suffix faster
			hint = r.commit + 1
		}
	default:
		for k, ent := range ents {
			idx := prevIdx + k + 1
			if idx <= len(r.log) {
				if r.log[idx-1].Term == ent.Term {
					continue // already have it
				}
				if idx <= r.commit {
					r.truncBelowCommit++ // impossible by quorum safety
					continue
				}
				r.truncate(idx - 1)
			}
			r.append(ent)
		}
		success = true
		matchIdx = prevIdx + len(ents)
		if c := commit; c > r.commit {
			if c > matchIdx {
				c = matchIdx // only the verified prefix may commit
			}
			r.setCommit(c)
		}
	}
	respTerm := r.term
	n.c.net.Send(n.addr, ln.addr, ctlBytes, func() {
		ln.onAppendAck(g, respTerm, success, matchIdx, hint, sentPs, n.id)
	})
}

// truncate discards the log suffix after idx (keeps log[:idx]).
func (r *replica) truncate(idx int) {
	for i := idx; i < len(r.log); i++ {
		if r.log[i].Key >= 0 {
			delete(r.widIdx, r.log[i].WID)
		}
	}
	r.log = r.log[:idx]
	if r.match != nil && r.match[r.selfPos] > idx {
		r.match[r.selfPos] = idx
	}
}

func (n *node) onAppendAck(g int, term int64, success bool, matchIdx, hint int, sentPs int64, from int) {
	if n.down {
		return
	}
	r := n.reps[g]
	if term > r.term {
		r.stepDown(term)
		return
	}
	if r.state != leader || term != r.term {
		return
	}
	pos := r.pos(from)
	if pos < 0 {
		return
	}
	if sentPs > r.ackSendTs[pos] {
		r.ackSendTs[pos] = sentPs
	}
	if success {
		if matchIdx > r.match[pos] {
			r.match[pos] = matchIdx
		}
		if r.match[pos]+1 > r.next[pos] {
			r.next[pos] = r.match[pos] + 1
		}
		r.advanceCommit()
		if r.next[pos] <= len(r.log) {
			r.sendAppendTo(pos) // pipeline the catch-up
		}
	} else {
		if hint < r.next[pos] {
			r.next[pos] = hint
		}
		if r.next[pos] < 1 {
			r.next[pos] = 1
		}
		r.sendAppendTo(pos)
	}
}

// advanceCommit moves the leader's commit point to the highest index
// replicated on a majority in the current term.
func (r *replica) advanceCommit() {
	if r.state != leader {
		return
	}
	for i := len(r.log); i > r.commit; i-- {
		if r.log[i-1].Term != r.term {
			break // only current-term entries commit by counting
		}
		cnt := 0
		for _, m := range r.match {
			if m >= i {
				cnt++
			}
		}
		if cnt >= r.majority() {
			r.setCommit(i)
			break
		}
	}
}

// setCommit applies newly committed entries and acks pending clients.
func (r *replica) setCommit(c int) {
	n := r.n
	for idx := r.commit + 1; idx <= c; idx++ {
		ent := r.log[idx-1]
		if ent.Key >= 0 {
			if a := r.applied[ent.Key]; ent.Ver >= a.Ver {
				r.applied[ent.Key] = appliedVal{Ver: ent.Ver, WID: ent.WID}
			}
		}
		if waiters, ok := r.pending[idx]; ok {
			delete(r.pending, idx)
			now := n.eng.Now()
			for _, w := range waiters {
				n.tr.Span(n.replTrack, "repl", w.startPs, now-w.startPs)
				n.replyWriteOK(w.opID, ent.WID, ent.Ver)
			}
		}
	}
	r.commit = c
}

func (r *replica) stepDown(term int64) {
	r.term = term
	r.state = follower
	r.leader = -1
	r.votes = 0
	r.pending = map[int][]pendingAck{}
}

// leaseValid reports whether this primary may serve a linearizable
// read right now: a majority (counting itself) acked a heartbeat sent
// within the last LeasePs.
func (r *replica) leaseValid(now int64) bool {
	if len(r.members) == 1 {
		return true
	}
	ts := make([]int64, len(r.members))
	copy(ts, r.ackSendTs)
	ts[r.selfPos] = now
	sort.Slice(ts, func(a, b int) bool { return ts[a] > ts[b] })
	return ts[r.majority()-1]+r.n.c.cfg.LeasePs > now
}

// --- client operations ------------------------------------------------------

func (n *node) replyRedirect(opID uint64, g int) {
	n.redirects++
	r := n.reps[g]
	hint := r.leader
	if hint == n.id {
		// A node that cannot serve (draining, lease expired) must not
		// name itself: the router pins its cursor on any hinted member,
		// so a self-hint would glue clients to this node.
		hint = -1
	}
	rt := n.c.rt
	n.c.net.Send(n.addr, 0, ctlBytes, func() {
		rt.onResp(opID, respRedirect, hint, 0, 0)
	})
}

func (n *node) replyWriteOK(opID uint64, wid uint64, ver int64) {
	rt := n.c.rt
	n.c.net.Send(n.addr, 0, ctlBytes, func() {
		rt.onResp(opID, respOK, -1, ver, wid)
	})
}

func (n *node) replyReadOK(opID uint64, ver int64, wid uint64) {
	rt := n.c.rt
	n.c.net.Send(n.addr, 0, n.c.cfg.MsgSize, func() {
		rt.onResp(opID, respOK, -1, ver, wid)
	})
}

func (n *node) onClientWrite(g, key int, ver int64, wid uint64, conn int, opID uint64) {
	if n.down {
		return
	}
	r := n.reps[g]
	if n.draining || r.state != leader {
		n.replyRedirect(opID, g)
		return
	}
	n.writes++
	now := n.eng.Now()
	// Retry of a write this term already holds: idempotent ack/wait.
	if idx, ok := r.widIdx[wid]; ok {
		if idx <= r.commit {
			n.replyWriteOK(opID, wid, ver)
		} else {
			r.pending[idx] = append(r.pending[idx], pendingAck{opID: opID, startPs: now})
		}
		return
	}
	term0 := r.term
	// Full local processing (ULP + store) through the node's server and
	// fleet; replication starts once the local pipeline retires.
	n.srv.Submit(conn, func() {
		if n.down || r.state != leader || r.term != term0 {
			return // deposed mid-processing; the client retries
		}
		if idx, ok := r.widIdx[wid]; ok { // a retry raced local processing
			if idx <= r.commit {
				n.replyWriteOK(opID, wid, ver)
			} else {
				r.pending[idx] = append(r.pending[idx], pendingAck{opID: opID, startPs: now})
			}
			return
		}
		r.append(logEnt{Term: r.term, Key: key, Ver: ver, WID: wid})
		// The "repl" span starts when local processing retires and the
		// entry enters the log — it measures pure replication latency.
		r.pending[len(r.log)] = append(r.pending[len(r.log)], pendingAck{opID: opID, startPs: n.eng.Now()})
		r.broadcastAppend()
		r.advanceCommit() // single-member groups commit immediately
	})
}

func (n *node) onClientRead(g, key, conn int, opID uint64) {
	if n.down {
		return
	}
	r := n.reps[g]
	if n.draining || r.state != leader || !r.leaseValid(n.eng.Now()) {
		n.replyRedirect(opID, g)
		return
	}
	n.reads++
	n.srv.Submit(conn, func() {
		if n.down || r.state != leader {
			return
		}
		if !r.leaseValid(n.eng.Now()) {
			n.replyRedirect(opID, g)
			return
		}
		a := r.applied[key]
		n.replyReadOK(opID, a.Ver, a.WID)
	})
}

// --- fault-domain control plane ---------------------------------------------

func (n *node) onKill() {
	if n.down {
		return
	}
	n.down = true
	n.tr.Instant(n.ctlTrack, "kill", n.eng.Now())
}

func (n *node) onRejoin() {
	if !n.down {
		return
	}
	n.down = false
	n.tr.Instant(n.ctlTrack, "rejoin", n.eng.Now())
	for _, r := range n.repList {
		if r.state == leader || r.state == candidate {
			// A rejoining node never resumes leadership it held before
			// the crash; it rejoins as a follower and catches up.
			r.state = follower
			r.leader = -1
		}
		r.electionAt = n.eng.Now() + r.electionDelay()
	}
}

func (n *node) onDrain() {
	if n.draining || n.down {
		return
	}
	n.draining = true
	n.tr.Instant(n.ctlTrack, "drain", n.eng.Now())
	for _, r := range n.repList {
		if r.state != leader {
			continue
		}
		// Transfer leadership to the best-caught-up backup; its votes
		// bypass stickiness (the draining leader stops serving first,
		// so the lease argument is preserved).
		best, bestMatch := -1, -1
		for pos := range r.members {
			if pos == r.selfPos {
				continue
			}
			if r.match[pos] > bestMatch {
				best, bestMatch = pos, r.match[pos]
			}
		}
		if best < 0 {
			continue
		}
		g := r.group
		tn := n.c.nodes[r.members[best]]
		n.c.net.Send(n.addr, tn.addr, ctlBytes, func() {
			tn.onTimeoutNow(g)
		})
	}
}

func (n *node) onUndrain() {
	if !n.draining {
		return
	}
	n.draining = false
	n.tr.Instant(n.ctlTrack, "undrain", n.eng.Now())
}

func (n *node) onTimeoutNow(g int) {
	if n.down || n.draining {
		return
	}
	r := n.reps[g]
	if r.state == leader {
		return
	}
	r.startElection(true)
}
