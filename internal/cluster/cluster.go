// Package cluster is the scale-out tier on top of the single-server
// SmartDIMM model (ROADMAP item 2): N simulated server nodes — each
// owning a complete sub-system (SmartDIMM ranks, memory hierarchy,
// fleet backend, server worker pool) — joined by an inter-node fabric
// and running primary-backup replication with quorum-acked writes,
// primary lease reads, and backup promotion on failure detection.
//
// The cluster composes with the sharded PDES engine: shard 0 carries
// the client router, shard 1+i carries node i, and every cross-node
// byte crosses shards through the fabric's Send at >= the propagation
// delay, which doubles as the conservative lookahead window. Node-level
// fault domains (kill / drain / rejoin, network partitions) are driven
// by seeded internal/fault plans and god-mode control messages, and the
// recorded client history plus final replica state feed the
// linearizability checker in check.go. See DESIGN.md §15.
package cluster

import (
	"fmt"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config assembles a cluster.
type Config struct {
	// Nodes is the server-node count (default 3). Groups is the replica
	// group count (default Nodes); RF the replication factor (default
	// min(3, Nodes)). Group g places on nodes {g, g+1, ..} mod Nodes.
	Nodes  int
	Groups int
	RF     int

	// Conns is the client connection count (default 2*Nodes); key k
	// belongs to group k mod Groups, and connection c writes only key c.
	Conns int
	// WriteFrac is each operation's probability of being a write
	// (default 0.5; negative selects 0).
	WriteFrac float64

	// MsgSize / Mode / Workers / NodeConns / FileKind shape each node's
	// local serving path (the node's server + fleet + SmartDIMM system).
	MsgSize   int
	Mode      server.Mode
	Workers   int
	NodeConns int
	FileKind  corpus.Kind

	Seed int64

	// Client pacing and failure handling.
	ThinkPs     int64 // delay between an ack and the next op (default 20us)
	OpTimeoutPs int64 // per-attempt timeout (default 2ms)
	RetryPs     int64 // backoff after a redirect (default 30us)

	// Replication timers. LeasePs must not exceed ElectionPs — the
	// minimum election delay is what makes the read lease safe.
	HeartbeatPs int64 // leader heartbeat period (default 60us)
	ElectionPs  int64 // base election timeout (default 400us)
	LeasePs     int64 // primary read lease (default ElectionPs)

	// Net shapes the inter-node fabric; Net.PropPs is the conservative
	// lookahead window (default 2us).
	Net NetConfig

	// NetFaults builds the per-endpoint net-plane injector (endpoint 0
	// is the router, 1+i node i); SysFaults the per-node data-plane
	// (memory-system) injector. Either may be nil.
	NetFaults func(endpoint int) *fault.Injector
	SysFaults func(node int) *fault.Injector

	// Trace gives every shard a tracer, merged by MergedTrace.
	Trace bool
	// ExecWorkers caps parallel epoch execution (0 = GOMAXPROCS,
	// 1 = the serial reference schedule).
	ExecWorkers int

	// Params/LLCBytes/LLCWays/Geometry configure each node's sub-system
	// (zero values select the same defaults as fleet.ShardedConfig).
	Params   *sim.Params
	LLCBytes int
	LLCWays  int
	Geometry dram.Geometry
}

// Cluster is the assembled tier.
type Cluster struct {
	cfg     Config
	se      *sim.ShardedEngine
	net     *Net
	rt      *router
	nodes   []*node
	groups  [][]int // group -> member node ids, ascending
	tracers []*telemetry.Tracer
	netInjs []*fault.Injector
}

// New builds the cluster: Nodes+1 engine shards, one sub-system per
// node, the fabric, the replica groups, and the client router.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Groups <= 0 {
		cfg.Groups = cfg.Nodes
	}
	if cfg.RF <= 0 {
		cfg.RF = 3
	}
	if cfg.RF > cfg.Nodes {
		cfg.RF = cfg.Nodes
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 2 * cfg.Nodes
	}
	switch {
	case cfg.WriteFrac < 0:
		cfg.WriteFrac = 0
	case cfg.WriteFrac == 0:
		cfg.WriteFrac = 0.5
	case cfg.WriteFrac > 1:
		cfg.WriteFrac = 1
	}
	if cfg.MsgSize <= 0 {
		cfg.MsgSize = 2048
	}
	if cfg.Mode == server.PlainHTTP {
		cfg.Mode = server.HTTPSMode
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.NodeConns <= 0 {
		cfg.NodeConns = 4
	}
	if cfg.ThinkPs <= 0 {
		cfg.ThinkPs = 20 * sim.Us
	}
	if cfg.OpTimeoutPs <= 0 {
		cfg.OpTimeoutPs = 2 * sim.Ms
	}
	if cfg.RetryPs <= 0 {
		cfg.RetryPs = 30 * sim.Us
	}
	if cfg.HeartbeatPs <= 0 {
		cfg.HeartbeatPs = 60 * sim.Us
	}
	if cfg.ElectionPs <= 0 {
		cfg.ElectionPs = 400 * sim.Us
	}
	if cfg.LeasePs <= 0 {
		cfg.LeasePs = cfg.ElectionPs
	}
	if cfg.LeasePs > cfg.ElectionPs {
		return nil, fmt.Errorf("cluster: lease %dps exceeds the %dps election floor; a deposed primary could serve a stale read", cfg.LeasePs, cfg.ElectionPs)
	}
	if cfg.Net.PropPs <= 0 {
		cfg.Net.PropPs = 2 * sim.Us
	}
	if cfg.HeartbeatPs < 2*cfg.Net.PropPs {
		return nil, fmt.Errorf("cluster: heartbeat %dps under the fabric RTT %dps floods the wire", cfg.HeartbeatPs, 2*cfg.Net.PropPs)
	}
	params := sim.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	if cfg.LLCBytes == 0 {
		cfg.LLCBytes, cfg.LLCWays = 2<<20, 8
	}
	if cfg.Geometry.Ranks == 0 {
		cfg.Geometry = dram.Geometry{Ranks: 1, BankGroups: 4, BanksPerBG: 4, Rows: 4096, ColsPerRow: 128}
	}

	c := &Cluster{cfg: cfg}
	c.se = sim.NewShardedEngine(cfg.Nodes+1, cfg.Net.PropPs)
	c.se.Workers = cfg.ExecWorkers

	c.tracers = make([]*telemetry.Tracer, cfg.Nodes+1)
	c.netInjs = make([]*fault.Injector, cfg.Nodes+1)
	for e := 0; e <= cfg.Nodes; e++ {
		if cfg.Trace {
			c.tracers[e] = telemetry.New()
			c.se.Shard(e).Tracer = c.tracers[e]
		}
		if cfg.NetFaults != nil {
			c.netInjs[e] = cfg.NetFaults(e)
		}
		// Net-plane fault firings carry picosecond timestamps, so they
		// land on the trace directly (the system injector's OnFire hook
		// scales DRAM cycles instead — that is why the planes must keep
		// separate injectors).
		if tr, inj := c.tracers[e], c.netInjs[e]; tr != nil && inj != nil {
			ft := tr.Track("faults")
			inj.OnFire = func(site string, _, now int64) {
				tr.Instant(ft, site, now)
			}
		}
	}
	c.net = newNet(c.se, cfg.Net, c.netInjs, c.tracers)

	for i := 0; i < cfg.Nodes; i++ {
		var sysInj *fault.Injector
		if cfg.SysFaults != nil {
			sysInj = cfg.SysFaults(i)
		}
		tracer := c.tracers[1+i]
		sys, err := sim.NewSystem(sim.SystemConfig{
			Params: params, LLCBytes: cfg.LLCBytes, LLCWays: cfg.LLCWays,
			Geometry:       cfg.Geometry,
			WithSmartDIMM:  true,
			SmartDIMMRanks: 1,
			Tracer:         tracer,
			Faults:         sysInj,
			Engine:         c.se.Shard(1 + i),
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d system: %w", i, err)
		}
		fl, err := fleet.New(fleet.Config{Sys: sys})
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d fleet: %w", i, err)
		}
		srv, err := server.New(sys.Engine, server.Config{
			Sys: sys, Backend: fl, Mode: cfg.Mode, Workers: cfg.Workers,
			MsgSize: cfg.MsgSize, Connections: cfg.NodeConns, FileKind: cfg.FileKind,
			Seed: cfg.Seed + int64(i)*100_003,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d server: %w", i, err)
		}
		n := &node{
			c: c, id: i, addr: 1 + i,
			eng: c.se.Shard(1 + i), sys: sys, fl: fl, srv: srv,
			inj: sysInj, nInj: c.netInjs[1+i],
			tr:   tracer,
			reps: map[int]*replica{},
		}
		n.replTrack = tracer.Track("repl")
		n.ctlTrack = tracer.Track("ctl")
		c.nodes = append(c.nodes, n)
	}

	// Replica placement: group g on RF consecutive nodes starting at
	// g mod Nodes, members listed ascending.
	for g := 0; g < cfg.Groups; g++ {
		members := make([]int, 0, cfg.RF)
		for j := 0; j < cfg.RF; j++ {
			members = append(members, (g+j)%cfg.Nodes)
		}
		sortInts(members)
		c.groups = append(c.groups, members)
	}
	for g, members := range c.groups {
		for pos, id := range members {
			n := c.nodes[id]
			r := &replica{
				n: n, group: g, members: members, selfPos: pos,
				leader:  -1,
				applied: map[int]appliedVal{},
				widIdx:  map[uint64]int{},
				pending: map[int][]pendingAck{},
				rng:     rand.New(rand.NewSource(cfg.Seed ^ int64(g)*7919 ^ int64(id)*1_000_003)),
			}
			n.reps[g] = r
			n.repList = append(n.repList, r)
		}
	}
	// Arm the failure detectors (setup-time scheduling is legal on every
	// shard engine).
	for _, n := range c.nodes {
		for _, r := range n.repList {
			d := r.electionDelay()
			r.electionAt = d
			n.eng.After(d, r.tickElection)
		}
	}
	c.rt = newRouter(c)
	return c, nil
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Engine exposes the sharded engine (shard 0 is the router).
func (c *Cluster) Engine() *sim.ShardedEngine { return c.se }

// Net exposes the inter-node fabric.
func (c *Cluster) Net() *Net { return c.net }

// History returns the recorded client operation history (live slice;
// read it only when the simulation is not running).
func (c *Cluster) History() []Op { return c.rt.history }

// GroupMembers returns group g's member node ids.
func (c *Cluster) GroupMembers(g int) []int { return c.groups[g] }

// Start opens the client loops.
func (c *Cluster) Start() { c.rt.Start() }

// RunUntil advances the whole cluster to the deadline.
func (c *Cluster) RunUntil(deadlinePs int64) uint64 { return c.se.RunUntil(deadlinePs) }

// Quiesce stops the clients and advances settlePs of simulated time so
// replication settles: in-flight operations drain or time out,
// primaries catch followers up, and commit points propagate on
// heartbeats. Run it (after the fault schedule has healed) before
// Check, whose durability invariant inspects every member's committed
// prefix.
func (c *Cluster) Quiesce(settlePs int64) {
	c.rt.stopped = true
	c.se.RunUntil(c.se.Now() + settlePs)
}

// BeginMeasurement snapshots router and per-node server counters.
func (c *Cluster) BeginMeasurement() {
	c.rt.BeginMeasurement()
	for _, n := range c.nodes {
		n.srv.BeginMeasurement()
	}
}

// --- fault-domain control ---------------------------------------------------

// KillAt schedules a node kill at atPs: the node freezes (drops every
// message and timer action) but keeps its durable replication state, as
// a crashed process with an intact log would.
func (c *Cluster) KillAt(nodeID int, atPs int64) {
	n := c.nodes[nodeID]
	c.se.Shard(0).At(atPs, func() {
		c.net.SendControl(0, n.addr, ctlBytes, n.onKill)
	})
}

// RejoinAt schedules a killed node's restart: it rejoins as a follower
// and catches up from the current primaries.
func (c *Cluster) RejoinAt(nodeID int, atPs int64) {
	n := c.nodes[nodeID]
	c.se.Shard(0).At(atPs, func() {
		c.net.SendControl(0, n.addr, ctlBytes, n.onRejoin)
	})
}

// DrainAt schedules a graceful drain: the node stops serving clients
// and hands its leaderships to the best-caught-up backups.
func (c *Cluster) DrainAt(nodeID int, atPs int64) {
	n := c.nodes[nodeID]
	c.se.Shard(0).At(atPs, func() {
		c.net.SendControl(0, n.addr, ctlBytes, n.onDrain)
	})
}

// UndrainAt reverses a drain (the node serves again once re-elected).
func (c *Cluster) UndrainAt(nodeID int, atPs int64) {
	n := c.nodes[nodeID]
	c.se.Shard(0).At(atPs, func() {
		c.net.SendControl(0, n.addr, ctlBytes, n.onUndrain)
	})
}

// --- measurement ------------------------------------------------------------

// Metrics aggregates one measured window.
type Metrics struct {
	Ops         uint64 // acked client operations in the window
	AckedWrites uint64
	AckedReads  uint64
	OpsPerSec   float64
	MeanLatPs   int64 // mean ack latency over the window's acked ops

	Timeouts   uint64 // cumulative router-side counters
	Retries    uint64
	Redirects  uint64
	Promotions uint64 // leader elections won across all nodes
	Net        NetTotals

	PerNode []server.Metrics

	Epochs    uint64
	SentMsgs  uint64
	Processed uint64
}

// Collect implements telemetry.Collector.
func (m Metrics) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "ops", Value: float64(m.Ops)})
	emit(telemetry.Sample{Name: "acked_writes", Value: float64(m.AckedWrites)})
	emit(telemetry.Sample{Name: "acked_reads", Value: float64(m.AckedReads)})
	emit(telemetry.Sample{Name: "ops_per_sec", Value: m.OpsPerSec})
	emit(telemetry.Sample{Name: "mean_lat_ps", Value: float64(m.MeanLatPs)})
	emit(telemetry.Sample{Name: "timeouts", Value: float64(m.Timeouts)})
	emit(telemetry.Sample{Name: "retries", Value: float64(m.Retries)})
	emit(telemetry.Sample{Name: "redirects", Value: float64(m.Redirects)})
	emit(telemetry.Sample{Name: "promotions", Value: float64(m.Promotions)})
}

// Run drives the standard protocol: start the clients, warm up, measure,
// collect. A request-processing error on any node fails the run (node
// order picks the reported one deterministically).
func (c *Cluster) Run(warmupPs, measurePs int64) (Metrics, error) {
	c.Start()
	c.se.RunUntil(warmupPs)
	c.BeginMeasurement()
	c.se.RunUntil(warmupPs + measurePs)
	return c.Collect()
}

// Collect gathers metrics for the window since BeginMeasurement.
func (c *Cluster) Collect() (Metrics, error) {
	var m Metrics
	for i, n := range c.nodes {
		if err := n.srv.LastError(); err != nil {
			return m, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		m.PerNode = append(m.PerNode, n.srv.Collect())
		m.Promotions += n.promotions
	}
	rt := c.rt
	m.Ops, m.AckedWrites, m.AckedReads = rt.acked, rt.ackedWrites, rt.ackedReads
	m.Timeouts, m.Retries, m.Redirects = rt.timeouts, rt.retries, rt.redirects
	elapsed := rt.eng.Now() - rt.measureFrom
	if elapsed > 0 {
		m.OpsPerSec = float64(m.Ops) / (float64(elapsed) * 1e-12)
	}
	var latSum int64
	var latN int64
	for i := range rt.history {
		op := &rt.history[i]
		if op.AckPs >= rt.measureFrom && op.AckPs >= 0 && rt.measuring {
			latSum += op.AckPs - op.InvokePs
			latN++
		}
	}
	if latN > 0 {
		m.MeanLatPs = latSum / latN
	}
	m.Net = c.net.Totals()
	m.Epochs = c.se.Epochs()
	m.SentMsgs = c.se.Sent()
	m.Processed = c.se.Processed()
	return m, nil
}

// MergedTrace folds the per-shard tracers into one deterministic stream
// ("rt/" for the router, "n<i>/" per node); nil when Trace was off.
func (c *Cluster) MergedTrace() *telemetry.Tracer {
	if !c.cfg.Trace {
		return nil
	}
	prefixes := make([]string, len(c.tracers))
	prefixes[0] = "rt/"
	for i := 1; i < len(prefixes); i++ {
		prefixes[i] = fmt.Sprintf("n%d/", i-1)
	}
	return telemetry.MergeShards(prefixes, c.tracers)
}

// RegisterMetrics registers the cluster aggregates plus every node's
// sub-system under "node<N>.*".
func (c *Cluster) RegisterMetrics(reg *telemetry.Registry) {
	m, err := c.Collect()
	if err == nil {
		reg.Register("cluster", m)
		reg.Register("cluster.net", m.Net)
	}
	reg.Register("sim", telemetry.CollectorFunc(func(emit func(telemetry.Sample)) {
		emit(telemetry.Sample{Name: "nodes", Value: float64(len(c.nodes))})
		emit(telemetry.Sample{Name: "lookahead_ps", Value: float64(c.se.Lookahead())})
		emit(telemetry.Sample{Name: "epochs", Value: float64(c.se.Epochs())})
		emit(telemetry.Sample{Name: "cross_shard_msgs", Value: float64(c.se.Sent())})
		emit(telemetry.Sample{Name: "events", Value: float64(c.se.Processed())})
	}))
	for i, n := range c.nodes {
		n.sys.RegisterMetricsPrefixed(reg, fmt.Sprintf("node%d", i))
	}
}
