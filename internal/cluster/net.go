// The inter-node fabric: every cluster endpoint (the client/router
// front-end is endpoint 0, node i is endpoint 1+i) owns its outgoing
// half of the mesh — a per-destination serializing transmitter plus the
// fault sites that decide whether a message survives the wire. Messages
// cross shards exclusively through sim.ShardedEngine.Send, so the
// propagation delay doubles as the conservative lookahead window.
//
// Reliability is TCP-like without modelling the ack round trip: the
// drop decision (partition window, Bernoulli loss) is made at the
// sender, so a dropped attempt schedules its own retransmission one RTO
// later — delivery time is the first surviving attempt's wire time,
// which is exactly what a retransmitting transport converges to. The
// per-message retry cap models a connection reset (the message expires;
// replication-layer retries and client retries recover above it).
//
// Determinism: endpoint state (transmitter occupancy, counters) is only
// touched from its own shard's events; fault sites are consulted on the
// sender's injector, so each site's RNG stream and trace are owned by
// one shard. Partition plans are value types armed identically on every
// endpoint, which is how one fault.Partition cuts both directions of a
// link from two different injectors without shared state.
package cluster

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Fault sites consulted by the fabric, on the sending endpoint's net
// injector. SiteNetCut is consulted through FireLink with the endpoint
// addresses, so fault.Partition plans cut it per direction;
// SiteNetDrop is a per-destination family ("net.drop.<dst>") so each
// directed link draws from an independent stream.
const (
	SiteNetCut  = "net.cut"
	SiteNetDrop = "net.drop"
)

// NetConfig sizes the fabric.
type NetConfig struct {
	Gbps   float64 // per-link line rate (default 100)
	PropPs int64   // one-way propagation; the cluster's lookahead window
	RTOPs  int64   // retransmission backoff after a dropped attempt
	// MaxTries bounds attempts per message (default 64); an expired
	// message is lost for good, like a reset connection.
	MaxTries int
}

// netEndpoint is one endpoint's sender-side state, owned by its shard.
type netEndpoint struct {
	id    int
	eng   *sim.Engine
	inj   *fault.Injector // net-plane injector (nil = clean)
	tr    *telemetry.Tracer
	track telemetry.TrackID

	busy      []int64  // per-destination transmitter free time
	dropSites []string // cached "net.drop.<dst>" names

	Sent      uint64 // attempts (including retransmissions)
	Dropped   uint64
	Retrans   uint64
	Delivered uint64
	Expired   uint64
	WireBytes uint64
}

// Net is the full mesh.
type Net struct {
	se  *sim.ShardedEngine
	cfg NetConfig
	eps []*netEndpoint
}

// newNet wires n endpoints over the sharded engine; endpoint e lives on
// shard e (the cluster maps endpoint 0 to the front-end shard and
// endpoint 1+i to node i's shard). injs[e] may be nil.
func newNet(se *sim.ShardedEngine, cfg NetConfig, injs []*fault.Injector, trs []*telemetry.Tracer) *Net {
	if cfg.Gbps <= 0 {
		cfg.Gbps = 100
	}
	if cfg.PropPs < se.Lookahead() {
		panic(fmt.Sprintf("cluster: net propagation %dps below lookahead %dps", cfg.PropPs, se.Lookahead()))
	}
	if cfg.RTOPs <= 0 {
		cfg.RTOPs = 300 * sim.Us
	}
	if cfg.MaxTries <= 0 {
		cfg.MaxTries = 64
	}
	n := &Net{se: se, cfg: cfg}
	for e := 0; e < se.Shards(); e++ {
		ep := &netEndpoint{
			id:   e,
			eng:  se.Shard(e),
			busy: make([]int64, se.Shards()),
		}
		if injs != nil {
			ep.inj = injs[e]
		}
		if trs != nil && trs[e] != nil {
			ep.tr = trs[e]
			ep.track = ep.tr.Track("xnet")
		}
		ep.dropSites = make([]string, se.Shards())
		for d := range ep.dropSites {
			ep.dropSites[d] = fmt.Sprintf("%s.%d", SiteNetDrop, d)
		}
		n.eps = append(n.eps, ep)
	}
	return n
}

func (n *Net) serializationPs(bytes int) int64 {
	return int64(float64(bytes*8) / (n.cfg.Gbps * 1e9) * 1e12)
}

// Send transmits bytes from endpoint src to dst and runs fn on dst's
// shard when the message lands, retransmitting through partitions and
// drops. It must be called from src's shard (or setup code before the
// run). fn must touch only dst-shard state.
func (n *Net) Send(src, dst int, bytes int, fn func()) {
	n.send(src, dst, bytes, false, 0, fn)
}

// SendControl is Send for the god-mode fault-domain control plane:
// kill/drain/rejoin commands bypass the fault sites (the experimenter's
// hand is not partitionable) but still pay wire time.
func (n *Net) SendControl(src, dst int, bytes int, fn func()) {
	n.send(src, dst, bytes, true, 0, fn)
}

func (n *Net) send(src, dst int, bytes int, god bool, try int, fn func()) {
	ep := n.eps[src]
	now := ep.eng.Now()
	start := now
	if ep.busy[dst] > start {
		start = ep.busy[dst]
	}
	done := start + n.serializationPs(bytes)
	ep.busy[dst] = done
	ep.Sent++
	ep.WireBytes += uint64(bytes)
	if !god && n.dropped(ep, dst, done) {
		ep.Dropped++
		ep.tr.Instant(ep.track, "xnet.drop", done)
		if try+1 >= n.cfg.MaxTries {
			ep.Expired++
			ep.tr.Instant(ep.track, "xnet.expire", done)
			return
		}
		ep.eng.At(done+n.cfg.RTOPs, func() {
			ep.Retrans++
			ep.tr.Instant(ep.track, "xnet.retransmit", ep.eng.Now())
			n.send(src, dst, bytes, god, try+1, fn)
		})
		return
	}
	ep.tr.Span(ep.track, "xwire", start, done-start)
	ep.Delivered++
	n.se.Send(src, dst, (done-now)+n.cfg.PropPs, fn)
}

// dropped consults the sender's fault sites: the partition site first
// (structural, direction-aware), then the per-link loss site — distinct
// sites, so arming one never perturbs the other's stream.
func (n *Net) dropped(ep *netEndpoint, dst int, atPs int64) bool {
	if ep.inj.FireLink(SiteNetCut, ep.id, dst, atPs) {
		return true
	}
	return ep.inj.Fire(ep.dropSites[dst], atPs)
}

// NetTotals aggregates endpoint counters in address order.
type NetTotals struct {
	Sent, Dropped, Retrans, Delivered, Expired, WireBytes uint64
}

// Totals folds every endpoint's counters (deterministic order).
func (n *Net) Totals() NetTotals {
	var t NetTotals
	for _, ep := range n.eps {
		t.Sent += ep.Sent
		t.Dropped += ep.Dropped
		t.Retrans += ep.Retrans
		t.Delivered += ep.Delivered
		t.Expired += ep.Expired
		t.WireBytes += ep.WireBytes
	}
	return t
}

// Collect implements telemetry.Collector.
func (t NetTotals) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "sent", Value: float64(t.Sent)})
	emit(telemetry.Sample{Name: "dropped", Value: float64(t.Dropped)})
	emit(telemetry.Sample{Name: "retransmits", Value: float64(t.Retrans)})
	emit(telemetry.Sample{Name: "delivered", Value: float64(t.Delivered)})
	emit(telemetry.Sample{Name: "expired", Value: float64(t.Expired)})
	emit(telemetry.Sample{Name: "wire_bytes", Value: float64(t.WireBytes)})
}
