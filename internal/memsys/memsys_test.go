package memsys

import (
	"bytes"
	"testing"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/memctrl"
)

func newHier(t *testing.T, nChannels int) *Hierarchy {
	t.Helper()
	llc := cache.MustNew(cache.Config{SizeBytes: 64 * 1024, Ways: 8,
		WayMask: [2]uint64{cache.ClassDMA: 0b11}})
	var chans []Channel
	for i := 0; i < nChannels; i++ {
		d, err := dram.NewPlainDIMM(dram.SmallGeometry())
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, Channel{Ctl: memctrl.New(memctrl.DefaultConfig(), d), Mod: d})
	}
	h, err := New(llc, chans...)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestReadWriteThroughCache(t *testing.T) {
	h := newHier(t, 1)
	want := bytes.Repeat([]byte{0xC3}, 64)
	if _, err := h.Write64(0, 0x4000, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	lat, err := h.Read64(0, 0x4000, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cached read mismatch")
	}
	if lat != LLCHitPs {
		t.Fatalf("expected hit latency, got %d", lat)
	}
}

func TestMissLatencyExceedsHit(t *testing.T) {
	h := newHier(t, 1)
	buf := make([]byte, 64)
	missLat, err := h.Read64(0, 0x8000, buf)
	if err != nil {
		t.Fatal(err)
	}
	hitLat, _ := h.Read64(0, 0x8000, buf)
	if missLat <= hitLat {
		t.Fatalf("miss %dps <= hit %dps", missLat, hitLat)
	}
}

func TestFlushWritesBackAndInvalidates(t *testing.T) {
	h := newHier(t, 1)
	want := bytes.Repeat([]byte{0x77}, 64)
	h.Write64(0, 0x1000, want)
	if !h.LLC.Contains(0x1000) {
		t.Fatal("line not cached after write")
	}
	if _, err := h.Flush(0x1000, 64); err != nil {
		t.Fatal(err)
	}
	if h.LLC.Contains(0x1000) {
		t.Fatal("line survived flush")
	}
	// Data must be in DRAM now: read misses and returns the value.
	got := make([]byte, 64)
	h.Read64(0, 0x1000, got)
	if !bytes.Equal(got, want) {
		t.Fatal("flushed data lost")
	}
}

func TestFlushResidencyCost(t *testing.T) {
	// §IV-A: flushing a 4KB range that is already in DRAM (not cached)
	// is substantially cheaper than flushing a dirty cached range.
	h := newHier(t, 1)
	buf := bytes.Repeat([]byte{1}, 64)
	for off := uint64(0); off < 4096; off += 64 {
		h.Write64(0, 0x10000+off, buf)
	}
	dirtyLat, err := h.Flush(0x10000, 4096)
	if err != nil {
		t.Fatal(err)
	}
	cleanLat, err := h.Flush(0x10000, 4096) // now absent from cache
	if err != nil {
		t.Fatal(err)
	}
	if float64(cleanLat) > 0.67*float64(dirtyLat) {
		t.Fatalf("uncached flush (%dps) not ~50%% faster than dirty flush (%dps)", cleanLat, dirtyLat)
	}
}

func TestDMAWriteLeaksViaDDIO(t *testing.T) {
	h := newHier(t, 1)
	buf := bytes.Repeat([]byte{9}, 64)
	// Stream DMA far beyond the 2 DDIO ways: early lines leak to DRAM.
	for i := uint64(0); i < 512; i++ {
		if err := h.DMAWrite64(i*64, buf); err != nil {
			t.Fatal(err)
		}
	}
	h.Membar()
	if h.Channels[0].Ctl.Stats().Writes == 0 {
		t.Fatal("no DDIO leakage writebacks reached DRAM")
	}
	// Data integrity: every line readable with correct contents.
	got := make([]byte, 64)
	for i := uint64(0); i < 512; i += 37 {
		if _, err := h.Read64(0, i*64, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, buf) {
			t.Fatalf("line %d corrupted", i)
		}
	}
}

func TestRangeModeRouting(t *testing.T) {
	h := newHier(t, 2)
	size := dram.SmallGeometry().CapacityBytes()
	c0, err := h.ChannelOf(0)
	if err != nil || c0 != 0 {
		t.Fatalf("channel of 0 = %d, %v", c0, err)
	}
	c1, err := h.ChannelOf(size)
	if err != nil || c1 != 1 {
		t.Fatalf("channel of %#x = %d, %v", size, c1, err)
	}
	// A 4KB page never straddles channels in range mode.
	base := size - 4096
	chA, _ := h.ChannelOf(base)
	chB, _ := h.ChannelOf(base + 4095)
	if chA != chB {
		t.Fatal("page straddles channels in range mode")
	}
	if _, err := h.ChannelOf(2 * size); err == nil {
		t.Fatal("unmapped address accepted")
	}
}

func TestInterleaveModeRouting(t *testing.T) {
	h := newHier(t, 2)
	h.Interleave = true
	a, _ := h.ChannelOf(0)
	b, _ := h.ChannelOf(64)
	c, _ := h.ChannelOf(128)
	if a == b || a != c {
		t.Fatalf("interleave pattern wrong: %d %d %d", a, b, c)
	}
	// Functional integrity across interleaved channels.
	want := bytes.Repeat([]byte{0xEE}, 64)
	for i := uint64(0); i < 16; i++ {
		h.Write64(0, i*64, want)
	}
	h.Flush(0, 16*64)
	got := make([]byte, 64)
	for i := uint64(0); i < 16; i++ {
		h.Read64(0, i*64, got)
		if !bytes.Equal(got, want) {
			t.Fatalf("interleaved line %d corrupted", i)
		}
	}
}

func TestMMIOBypassesCache(t *testing.T) {
	h := newHier(t, 1)
	data := bytes.Repeat([]byte{0xAB}, 64)
	if _, err := h.MMIOWrite(0x9000, data); err != nil {
		t.Fatal(err)
	}
	if h.LLC.Contains(0x9000) {
		t.Fatal("MMIO write allocated in LLC")
	}
	got := make([]byte, 64)
	if _, err := h.MMIORead(0x9000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("MMIO round trip mismatch")
	}
}

func TestTotalBytes(t *testing.T) {
	h := newHier(t, 2)
	if h.TotalBytes() != 2*dram.SmallGeometry().CapacityBytes() {
		t.Fatal("TotalBytes wrong")
	}
}

func TestNewRequiresChannel(t *testing.T) {
	llc := cache.MustNew(cache.Config{SizeBytes: 64 * 1024, Ways: 8})
	if _, err := New(llc); err == nil {
		t.Fatal("hierarchy without channels accepted")
	}
}
