package memsys

import (
	"bytes"
	"testing"
)

func TestDMARead64ServesCacheAndDRAM(t *testing.T) {
	h := newHier(t, 1)
	want := bytes.Repeat([]byte{0x31}, 64)
	h.Write64(0, 0x3000, want)
	got := make([]byte, 64)
	// Cached: served from the LLC without allocation churn.
	lat, err := h.DMARead64(0x3000, got)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("cached DMA read: %v", err)
	}
	if lat != LLCHitPs {
		t.Fatalf("cached DMA latency = %d", lat)
	}
	// Flushed to DRAM: the DMA read must fetch from the channel.
	h.Flush(0x3000, 64)
	lat, err = h.DMARead64(0x3000, got)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("DRAM DMA read: %v", err)
	}
	if lat <= LLCHitPs {
		t.Fatalf("DRAM DMA latency = %d, want > hit latency", lat)
	}
	if _, err := h.DMARead64(1<<40, got); err == nil {
		t.Fatal("unmapped DMA read accepted")
	}
}

func TestContentionLoadFactor(t *testing.T) {
	h := newHier(t, 1)
	var now int64
	h.Clock = func() int64 { return now }
	buf := make([]byte, 64)
	if h.LoadFactor() != 1 {
		t.Fatal("initial load factor must be 1")
	}
	// Saturate the window: lots of demand with barely advancing time.
	for i := 0; i < 100000; i++ {
		addr := uint64(i) * 64
		h.Read64(0, addr, buf)
		now += 100 // 0.1ns per access: rho pegged at max
	}
	// Cross the window boundary to trigger the factor update.
	now += contentionWinPs
	h.Read64(0, 0x7000000, buf)
	now += contentionWinPs
	h.Read64(0, 0x7001000, buf)
	if lf := h.LoadFactor(); lf <= 1 {
		t.Fatalf("load factor = %.2f after saturating demand", lf)
	}
	if lf := h.LoadFactor(); lf > 1/(1-maxRho)+0.01 {
		t.Fatalf("load factor %.2f exceeds the rho cap", lf)
	}
	// An idle window brings the factor back down.
	now += 100 * contentionWinPs
	h.Read64(0, 0x7002000, buf)
	now += contentionWinPs
	h.Read64(0, 0x7004000, buf)
	if lf := h.LoadFactor(); lf > 1.1 {
		t.Fatalf("load factor %.2f did not decay after idle window", lf)
	}
}

func TestWrite64MissEvictsAndWritesBack(t *testing.T) {
	h := newHier(t, 1)
	buf := bytes.Repeat([]byte{1}, 64)
	// Fill far beyond the 64KB LLC so FillDirty evicts dirty victims.
	for i := uint64(0); i < 4096; i++ {
		if _, err := h.Write64(0, i*64, buf); err != nil {
			t.Fatal(err)
		}
	}
	if h.Channels[0].Ctl.Stats().Writes == 0 && h.Channels[0].Ctl.PendingWrites() == 0 {
		t.Fatal("streaming writes produced no writebacks")
	}
	// Out-of-range write fails cleanly at eviction time.
	if _, err := h.Write64(0, 1<<40, buf); err == nil {
		// The write itself lands in the cache; the error surfaces when
		// the line is evicted and routed. Force it:
		for i := uint64(0); i < 8192; i++ {
			if _, err := h.Write64(0, i*64, buf); err != nil {
				return // surfaced as expected
			}
		}
		t.Fatal("unroutable address never surfaced an error")
	}
}

func TestMMIOErrorPaths(t *testing.T) {
	h := newHier(t, 1)
	buf := make([]byte, 64)
	if _, err := h.MMIOWrite(1<<40, buf); err == nil {
		t.Fatal("unmapped MMIO write accepted")
	}
	if _, err := h.MMIORead(1<<40, buf); err == nil {
		t.Fatal("unmapped MMIO read accepted")
	}
}

func TestFlushUnmappedRange(t *testing.T) {
	h := newHier(t, 1)
	// Flushing an unmapped dirty line must surface the routing error.
	h.LLC.FillDirty(1<<40, 0, bytes.Repeat([]byte{9}, 64))
	if _, err := h.Flush(1<<40, 64); err == nil {
		t.Fatal("flush of unroutable dirty line accepted")
	}
}
