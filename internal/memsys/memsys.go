// Package memsys composes the LLC model, memory controllers and DIMM
// modules into the host memory system the rest of the reproduction
// drives: cached reads/writes from cores, DDIO DMA writes from devices,
// cache-line flushes, memory barriers, and uncached MMIO accesses to
// SmartDIMM's config space.
//
// Address space layout follows the AxDIMM prototype's single-channel
// mode (§V, §VI): each DIMM module owns a contiguous physical range, so
// 4KB pages map entirely to one DIMM. An optional fine-grain interleave
// mode spreads consecutive cachelines across channels for the §V-D
// discussion experiments.
package memsys

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/memctrl"
)

// Latencies (in picoseconds) for the non-DRAM components of an access.
// DRAM time comes from the memctrl timing model.
const (
	LLCHitPs     = 20_000 // ~20ns LLC hit
	LLCMissTagPs = 5_000  // tag check before going to memory
	FlushBasePs  = 4_000  // per-line clflush issue cost
	MMIOPs       = 80_000 // uncached MMIO round trip
)

// Channel binds one memory controller to one DIMM module.
type Channel struct {
	Ctl *memctrl.Controller
	Mod dram.Module
	// Base is the start of this channel's physical range (range mode).
	Base uint64
	Size uint64
}

// Hierarchy is the host memory system: one shared LLC in front of one or
// more channels.
type Hierarchy struct {
	LLC        *cache.Cache
	Channels   []Channel
	Interleave bool // false: range mode (default); true: 64B round-robin

	// Clock, when set (the discrete-event engine's Now), enables the
	// bandwidth-contention model: DRAM demand from all actors within a
	// window inflates access latencies M/M/1-style. This is what makes
	// co-running workloads interfere through the memory channel (the
	// Table I mechanism) beyond plain LLC capacity contention.
	Clock func() int64

	winStartPs int64
	winBusyPs  int64
	loadFactor float64
}

// Contention-model constants: the pure burst occupancy of one 64-byte
// access on a DDR4-3200 channel, the averaging window, and the maximum
// modelled utilization (queueing theory blows up at 1.0).
const (
	burstBusyPs     = 2_500
	contentionWinPs = 100 * 1000 * 1000 // 100us
	maxRho          = 0.85
)

// accountDRAM records channel demand and returns the latency inflated by
// the current load factor.
func (h *Hierarchy) accountDRAM(latPs int64, accesses int) int64 {
	if h.Clock == nil {
		return latPs
	}
	now := h.Clock()
	if h.winStartPs == 0 {
		h.winStartPs = now
		h.loadFactor = 1
	}
	if elapsed := now - h.winStartPs; elapsed >= contentionWinPs {
		rho := float64(h.winBusyPs) / float64(elapsed) / float64(len(h.Channels))
		if rho > maxRho {
			rho = maxRho
		}
		h.loadFactor = 1 / (1 - rho)
		h.winStartPs = now
		h.winBusyPs = 0
	}
	h.winBusyPs += int64(accesses) * burstBusyPs
	if h.loadFactor <= 1 {
		return latPs
	}
	return int64(float64(latPs) * h.loadFactor)
}

// LoadFactor exposes the current contention multiplier (for tests).
func (h *Hierarchy) LoadFactor() float64 {
	if h.loadFactor < 1 {
		return 1
	}
	return h.loadFactor
}

// New builds a hierarchy in range mode over the given channels; channel
// bases are assigned contiguously in order.
func New(llc *cache.Cache, chans ...Channel) (*Hierarchy, error) {
	if len(chans) == 0 {
		return nil, fmt.Errorf("memsys: need at least one channel")
	}
	base := uint64(0)
	for i := range chans {
		geo := chans[i].Mod.Mapper().Geometry()
		chans[i].Base = base
		chans[i].Size = geo.CapacityBytes()
		base += chans[i].Size
	}
	return &Hierarchy{LLC: llc, Channels: chans}, nil
}

// TotalBytes returns the aggregate capacity.
func (h *Hierarchy) TotalBytes() uint64 {
	var n uint64
	for _, c := range h.Channels {
		n += c.Size
	}
	return n
}

// route returns the channel and channel-local address for phys.
func (h *Hierarchy) route(phys uint64) (*Channel, uint64, error) {
	if h.Interleave {
		n := uint64(len(h.Channels))
		cl := phys / dram.CachelineSize
		ch := &h.Channels[cl%n]
		local := (cl/n)*dram.CachelineSize + phys%dram.CachelineSize
		if local >= ch.Size {
			return nil, 0, fmt.Errorf("memsys: address %#x beyond capacity", phys)
		}
		return ch, local, nil
	}
	for i := range h.Channels {
		c := &h.Channels[i]
		if phys >= c.Base && phys < c.Base+c.Size {
			return c, phys - c.Base, nil
		}
	}
	return nil, 0, fmt.Errorf("memsys: address %#x unmapped", phys)
}

// ChannelOf returns the index of the channel serving phys (for tests and
// the single-channel-mapping checks of §V-D).
func (h *Hierarchy) ChannelOf(phys uint64) (int, error) {
	ch, _, err := h.route(phys)
	if err != nil {
		return -1, err
	}
	for i := range h.Channels {
		if &h.Channels[i] == ch {
			return i, nil
		}
	}
	return -1, fmt.Errorf("memsys: channel not found")
}

// writeback pushes a dirty victim to its channel.
func (h *Hierarchy) writeback(v cache.Victim) error {
	ch, local, err := h.route(v.Addr)
	if err != nil {
		return err
	}
	h.accountDRAM(0, 1) // posted write: consumes bandwidth, adds no latency
	_, err = ch.Ctl.Write(local, -1, v.Data[:])
	return err
}

// Read64 performs a cached 64-byte read. It returns the modelled latency
// in picoseconds.
func (h *Hierarchy) Read64(core int, addr uint64, dst []byte) (int64, error) {
	addr &^= dram.CachelineSize - 1
	if h.LLC.Read(addr, cache.ClassCPU, dst) {
		return LLCHitPs, nil
	}
	ch, local, err := h.route(addr)
	if err != nil {
		return 0, err
	}
	start := ch.Ctl.Now()
	done, err := ch.Ctl.Read(local, core, dst)
	if err != nil {
		return 0, err
	}
	if v := h.LLC.Fill(addr, cache.ClassCPU, dst); v != nil && v.Dirty {
		if err := h.writeback(*v); err != nil {
			return 0, err
		}
	}
	lat := LLCMissTagPs + h.accountDRAM(ch.Ctl.CycleToPs(done-start), 1)
	return lat, nil
}

// Write64 performs a cached full-line store (write-allocate without
// fetch, since the whole line is overwritten). Latency in picoseconds.
func (h *Hierarchy) Write64(core int, addr uint64, src []byte) (int64, error) {
	addr &^= dram.CachelineSize - 1
	if h.LLC.Write(addr, cache.ClassCPU, src) {
		return LLCHitPs, nil
	}
	if v := h.LLC.FillDirty(addr, cache.ClassCPU, src); v != nil && v.Dirty {
		if err := h.writeback(*v); err != nil {
			return 0, err
		}
	}
	return LLCHitPs, nil
}

// DMAWrite64 models a device delivering one cacheline via DDIO: the line
// allocates into the DMA ways of the LLC; evicted dirty lines leak to
// DRAM — the Observation 3 mechanism.
func (h *Hierarchy) DMAWrite64(addr uint64, src []byte) error {
	addr &^= dram.CachelineSize - 1
	if v := h.LLC.FillDirty(addr, cache.ClassDMA, src); v != nil && v.Dirty {
		return h.writeback(*v)
	}
	return nil
}

// PeerDMAWrite64 models an RDMA-capable NIC writing one cacheline
// directly into device-adjacent memory (peer DMA / PCIe peer-to-peer):
// the store bypasses the LLC's DDIO ways entirely and is issued to the
// owning channel's controller, so rank timing and the channel bandwidth
// meter price the deposit. Stale cached copies of the line are
// invalidated, not written back — the target region is device-owned
// (an RDMA MR inside a SmartDIMM lower-half buffer) and the peer write
// wins by protocol, exactly like a DMA overwrite of an uncached region.
func (h *Hierarchy) PeerDMAWrite64(addr uint64, src []byte) (int64, error) {
	addr &^= dram.CachelineSize - 1
	h.LLC.FlushRange(addr, dram.CachelineSize, func(cache.Victim) {})
	ch, local, err := h.route(addr)
	if err != nil {
		return 0, err
	}
	start := ch.Ctl.Now()
	done, err := ch.Ctl.Write(local, -1, src)
	if err != nil {
		return 0, err
	}
	return h.accountDRAM(ch.Ctl.CycleToPs(done-start), 1), nil
}

// DMARead64 models a device reading one cacheline (NIC TX DMA): served
// from the LLC when present, otherwise from DRAM without allocation.
func (h *Hierarchy) DMARead64(addr uint64, dst []byte) (int64, error) {
	addr &^= dram.CachelineSize - 1
	if h.LLC.Read(addr, cache.ClassDMA, dst) {
		return LLCHitPs, nil
	}
	ch, local, err := h.route(addr)
	if err != nil {
		return 0, err
	}
	start := ch.Ctl.Now()
	done, err := ch.Ctl.Read(local, -1, dst)
	if err != nil {
		return 0, err
	}
	return h.accountDRAM(ch.Ctl.CycleToPs(done-start), 1), nil
}

// Flush performs clflush over [addr, addr+size): dirty lines are written
// back, all lines invalidated, and the affected channels' write queues
// drained so the data is observable at the DIMM (clflush + sfence).
// It returns the modelled latency in picoseconds; per §IV-A this is
// substantially cheaper when the range is not cached.
func (h *Hierarchy) Flush(addr uint64, size int) (int64, error) {
	lines := (size + dram.CachelineSize - 1) / dram.CachelineSize
	lat := int64(lines) * FlushBasePs
	// The CPU spends real time issuing clflush per line; advance the
	// controllers so the resulting writebacks carry those cycles. This
	// is also what keeps the S7 race of Fig. 6 rare: by the time the
	// flush-induced wrCAS reaches the DIMM, the DSA result is ready.
	for i := range h.Channels {
		ctl := h.Channels[i].Ctl
		ctl.AdvanceTo(ctl.Now() + lat/ctlTCKps(ctl))
	}
	var wbErr error
	dirty := 0
	h.LLC.FlushRange(addr, size, func(v cache.Victim) {
		dirty++
		if err := h.writeback(v); err != nil && wbErr == nil {
			wbErr = err
		}
	})
	if wbErr != nil {
		return 0, wbErr
	}
	if dirty > 0 {
		for i := range h.Channels {
			start := h.Channels[i].Ctl.Now()
			done, err := h.Channels[i].Ctl.DrainWrites()
			if err != nil {
				return 0, err
			}
			lat += h.Channels[i].Ctl.CycleToPs(done - start)
		}
	}
	return lat, nil
}

// ctlTCKps returns the controller's clock period via a 1-cycle probe.
func ctlTCKps(c *memctrl.Controller) int64 {
	if p := c.CycleToPs(1); p > 0 {
		return p
	}
	return 625
}

// Membar drains every channel's write queue — the fence CompCpy inserts
// between ordered 64-byte copies (Algorithm 2, lines 25-28).
func (h *Hierarchy) Membar() error {
	for i := range h.Channels {
		if _, err := h.Channels[i].Ctl.DrainWrites(); err != nil {
			return err
		}
	}
	return nil
}

// MMIOWrite performs an uncached 64-byte write (WC/UC mapping of the
// SmartDIMM config space). It bypasses the LLC and the write queue so
// the device observes it immediately and in order.
func (h *Hierarchy) MMIOWrite(addr uint64, src []byte) (int64, error) {
	ch, local, err := h.route(addr)
	if err != nil {
		return 0, err
	}
	if _, err := ch.Ctl.Write(local, -1, src); err != nil {
		return 0, err
	}
	if _, err := ch.Ctl.DrainWrites(); err != nil {
		return 0, err
	}
	return MMIOPs, nil
}

// MMIORead performs an uncached 64-byte read from config space.
func (h *Hierarchy) MMIORead(addr uint64, dst []byte) (int64, error) {
	ch, local, err := h.route(addr)
	if err != nil {
		return 0, err
	}
	if _, err := ch.Ctl.Read(local, -1, dst); err != nil {
		return 0, err
	}
	return MMIOPs, nil
}
